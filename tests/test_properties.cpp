// Property-based and parameterized sweeps across the stack: field algebra
// over many seeds, Groth16 across circuit shapes, wire-format fuzzing, and
// chain-level conservation invariants.
#include <gtest/gtest.h>

#include "chain/network.h"
#include "ec/multiexp.h"
#include "snark/gadgets/mimc_gadget.h"
#include "snark/groth16.h"

namespace zl {
namespace {

// ---------------------------------------------------------------------------
// Field algebra sweep, parameterized over seeds.
// ---------------------------------------------------------------------------

class FieldAlgebraSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldAlgebraSweep, RingAndFieldLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, -(b - a));
    if (!a.is_zero()) {
      EXPECT_EQ((a * b) * a.inverse(), b);
      EXPECT_EQ(a.pow(5), a * a * a * a * a);
    }
    // Frobenius on the prime field is the identity: a^r = a.
    EXPECT_EQ(a.pow(Fr::modulus_bigint()), a);
  }
}

TEST_P(FieldAlgebraSweep, SerializationIsCanonical) {
  Rng rng(GetParam() ^ 0xabcd);
  for (int i = 0; i < 20; ++i) {
    const Fq v = Fq::random(rng);
    EXPECT_EQ(Fq::from_bytes(v.to_bytes()), v);
    EXPECT_EQ(bigint_from_bytes(v.to_bytes()), v.to_bigint());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldAlgebraSweep,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xdeadbeefull, 987654321ull));

// ---------------------------------------------------------------------------
// Groth16 sweep over circuit shapes: chains of squarings with a public
// output, from tiny to a few hundred constraints.
// ---------------------------------------------------------------------------

class Groth16Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Groth16Sweep, CompletenessAndStatementBinding) {
  const std::size_t chain_length = GetParam();
  using namespace snark;
  CircuitBuilder real;
  Fr expected = Fr::from_u64(3);
  for (std::size_t i = 0; i < chain_length; ++i) expected = expected.squared();
  const Wire out2 = real.input(expected);
  Wire cur2 = real.witness(Fr::from_u64(3));
  for (std::size_t i = 0; i < chain_length; ++i) cur2 = real.mul(cur2, cur2);
  real.enforce_equal(cur2, out2);
  ASSERT_TRUE(real.constraint_system().is_satisfied(real.assignment()));

  Rng rng(900 + chain_length);
  const Keypair keys = setup(real.constraint_system(), rng);
  const Proof proof = prove(keys.pk, real.constraint_system(), real.assignment(), rng);
  EXPECT_TRUE(verify(keys.vk, {expected}, proof));
  EXPECT_FALSE(verify(keys.vk, {expected + Fr::one()}, proof));
}

INSTANTIATE_TEST_SUITE_P(CircuitSizes, Groth16Sweep,
                         ::testing::Values(1u, 2u, 7u, 33u, 100u, 257u));

// ---------------------------------------------------------------------------
// Wire-format fuzz: random mutations of valid encodings must never crash —
// they either parse to something or throw std::exception.
// ---------------------------------------------------------------------------

template <typename ParseFn>
void fuzz_parser(Rng& rng, const Bytes& valid, ParseFn parse, int mutations = 200) {
  for (int i = 0; i < mutations; ++i) {
    Bytes mutated = valid;
    switch (rng.uniform(4)) {
      case 0:  // bit flip
        if (!mutated.empty()) mutated[rng.uniform(mutated.size())] ^= 1 << rng.uniform(8);
        break;
      case 1:  // truncate
        mutated.resize(rng.uniform(mutated.size() + 1));
        break;
      case 2:  // extend
        mutated.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
        break;
      default: {  // random garbage of similar length
        mutated = rng.bytes(rng.uniform(valid.size() + 8));
        break;
      }
    }
    try {
      parse(mutated);
    } catch (const std::exception&) {
      // rejection is fine; crashing or non-std exceptions are not
    }
  }
}

TEST(WireFormatFuzz, TransactionParserIsTotal) {
  Rng rng(910);
  chain::Wallet wallet(rng);
  const Bytes valid =
      wallet.make_transaction(chain::Address(), 5, 30000, "method", to_bytes("payload"))
          .to_bytes();
  fuzz_parser(rng, valid, [](const Bytes& b) {
    const auto tx = chain::Transaction::from_bytes(b);
    (void)tx.verify_signature();
  });
}

TEST(WireFormatFuzz, BlockParserIsTotal) {
  Rng rng(911);
  chain::Wallet wallet(rng);
  chain::Block block;
  block.header.parent_hash = Bytes(32, 1);
  block.transactions.push_back(
      wallet.make_transaction(chain::Address(), 5, 30000, "m", {}));
  block.header.tx_root = chain::Block::compute_tx_root(block.transactions);
  const Bytes valid = chain::block_to_bytes(block);
  fuzz_parser(rng, valid, [](const Bytes& b) {
    const auto blk = chain::block_from_bytes(b);
    (void)blk.well_formed();
  });
}

TEST(WireFormatFuzz, ProofParserIsTotal) {
  Rng rng(912);
  snark::Proof proof;
  proof.a = G1::generator() * 5;
  proof.b = G2::generator() * 7;
  proof.c = G1::generator() * 9;
  fuzz_parser(rng, proof.to_bytes(),
              [](const Bytes& b) { (void)snark::Proof::from_bytes(b); });
}

// ---------------------------------------------------------------------------
// Chain invariant: total supply is conserved by every transaction kind
// (transfers, deployments, contract calls, reverts, gas payments).
// ---------------------------------------------------------------------------

TEST(ChainInvariants, TotalSupplyConserved) {
  Rng rng(920);
  chain::Wallet alice(rng), bob(rng), miner_wallet(rng);
  chain::ChainState state;
  constexpr std::uint64_t kSupply = 50'000'000;
  state.credit(alice.address(), kSupply);
  const chain::Address miner = miner_wallet.address();

  const auto total = [&] {
    // All addresses that can possibly hold balance in this scenario.
    std::uint64_t sum = state.balance_of(alice.address()) + state.balance_of(bob.address()) +
                        state.balance_of(miner);
    for (std::uint64_t nonce = 0; nonce < 8; ++nonce) {
      sum += state.balance_of(chain::Address::for_contract(alice.address(), nonce));
    }
    return sum;
  };

  // A mix of successes and failures.
  state.apply_transaction(alice.make_transaction(bob.address(), 1234, 21000, "", {}), 1, miner);
  EXPECT_EQ(total(), kSupply);
  // Unknown contract type -> fault, gas still charged, value returned.
  state.apply_transaction(alice.make_transaction(chain::Address(), 999, 60000, "no-such", {}), 2,
                          miner);
  EXPECT_EQ(total(), kSupply);
  // Overdrawing transaction is invalid outright (never enters a block) and
  // must leave the state untouched.
  EXPECT_THROW(
      state.apply_transaction(alice.make_transaction(bob.address(), kSupply, 21000, "", {}), 3,
                              miner),
      std::invalid_argument);
  EXPECT_EQ(total(), kSupply);
}

// ---------------------------------------------------------------------------
// Consensus property: nodes that see the same blocks in different orders
// converge to identical heads and state.
// ---------------------------------------------------------------------------

TEST(ChainInvariants, BlockOrderIndependence) {
  Rng rng(921);
  chain::Wallet alice(rng), bob(rng);
  chain::GenesisConfig genesis;
  genesis.allocations = {{alice.address(), 10'000'000}};
  genesis.difficulty = 4;

  // Build a small tree of blocks: a chain of 3 plus a fork of 2.
  std::vector<chain::Block> blocks;
  const auto mine = [&](const Bytes& parent, std::uint64_t number, std::uint64_t stamp,
                        std::vector<chain::Transaction> txs) {
    chain::Block b;
    b.header.parent_hash = parent;
    b.header.number = number;
    b.header.difficulty = genesis.difficulty;
    b.header.timestamp = stamp;
    b.transactions = std::move(txs);
    b.header.tx_root = chain::Block::compute_tx_root(b.transactions);
    while (!chain::proof_of_work_valid(b.header)) ++b.header.nonce;
    blocks.push_back(b);
    return b;
  };
  chain::Blockchain reference(genesis);
  const auto a1 =
      mine(reference.head_hash(), 1, 1, {alice.make_transaction(bob.address(), 10, 21000, "", {})});
  const auto a2 = mine(a1.hash(), 2, 2, {});
  const auto a3 = mine(a2.hash(), 3, 3, {});
  const auto b1 = mine(a1.hash(), 2, 99, {});  // fork at height 2 (loses)

  // Apply in several different orders (parent-before-child preserved per
  // branch by the chains' own rules; orphaned deliveries return false and
  // are retried by the caller here).
  const std::vector<std::vector<int>> orders = {{0, 1, 2, 3}, {0, 3, 1, 2}, {0, 1, 3, 2}};
  std::vector<Bytes> heads;
  for (const auto& order : orders) {
    chain::Blockchain chain(genesis);
    std::vector<int> pending(order.begin(), order.end());
    while (!pending.empty()) {
      std::vector<int> next;
      for (const int idx : pending) {
        if (!chain.add_block(blocks[static_cast<std::size_t>(idx)])) {
          if (!chain.knows(blocks[static_cast<std::size_t>(idx)].hash())) next.push_back(idx);
        }
      }
      if (next.size() == pending.size()) break;  // no progress
      pending = next;
    }
    heads.push_back(chain.head_hash());
    EXPECT_EQ(chain.state().balance_of(bob.address()), 10u);
  }
  EXPECT_EQ(heads[0], heads[1]);
  EXPECT_EQ(heads[0], heads[2]);
}

// ---------------------------------------------------------------------------
// MiMC gadget/native agreement sweep (parameterized over seeds).
// ---------------------------------------------------------------------------

class MimcSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MimcSweep, GadgetNativeAgreement) {
  Rng rng(GetParam());
  using namespace snark;
  CircuitBuilder b;
  const Fr x = Fr::random(rng), k = Fr::random(rng);
  EXPECT_EQ(mimc_permute_gadget(b, b.witness(x), b.witness(k)).value, mimc_permute(x, k));
  EXPECT_TRUE(b.constraint_system().is_satisfied(b.assignment()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MimcSweep, ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace zl
