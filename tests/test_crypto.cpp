// Unit tests for the byte/hash/randomness/bignum substrate.
#include <gtest/gtest.h>

#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/keccak.h"
#include "crypto/rng.h"
#include "crypto/sha256.h"

namespace zl {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0x0001ABFF"), data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, BigEndianIntegers) {
  Bytes out;
  append_u32_be(out, 0x01020304u);
  append_u64_be(out, 0x05060708090a0b0cULL);
  EXPECT_EQ(out.size(), 12u);
  EXPECT_EQ(read_u32_be(out, 0), 0x01020304u);
  EXPECT_EQ(read_u64_be(out, 4), 0x05060708090a0b0cULL);
  EXPECT_THROW(read_u64_be(out, 8), std::out_of_range);
}

TEST(Bytes, FrameRoundTrip) {
  Bytes out;
  append_frame(out, to_bytes("hello"));
  append_frame(out, {});
  append_frame(out, to_bytes("world"));
  std::size_t offset = 0;
  EXPECT_EQ(read_frame(out, offset), to_bytes("hello"));
  EXPECT_EQ(read_frame(out, offset), Bytes{});
  EXPECT_EQ(read_frame(out, offset), to_bytes("world"));
  EXPECT_EQ(offset, out.size());
}

TEST(Bytes, FrameTruncationDetected) {
  Bytes out;
  append_frame(out, to_bytes("hello"));
  out.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(read_frame(out, offset), std::out_of_range);
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
}

// FIPS 180-4 test vectors.
TEST(Sha256, KnownVectors) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finalize();
  EXPECT_EQ(to_hex(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Sha256 h;
  h.update(to_bytes("he"));
  h.update(to_bytes("llo "));
  h.update(to_bytes("world"));
  const auto digest = h.finalize();
  EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256::hash("hello world"));
}

// RFC 4231 test case 2.
TEST(Sha256, HmacKnownVector) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Sha256, Mgf1LengthsAndDeterminism) {
  const Bytes seed = to_bytes("seed");
  EXPECT_EQ(mgf1_sha256(seed, 0).size(), 0u);
  EXPECT_EQ(mgf1_sha256(seed, 17).size(), 17u);
  EXPECT_EQ(mgf1_sha256(seed, 100), mgf1_sha256(seed, 100));
  // Prefix property: shorter outputs are prefixes of longer ones.
  const Bytes long_mask = mgf1_sha256(seed, 64);
  const Bytes short_mask = mgf1_sha256(seed, 32);
  EXPECT_TRUE(std::equal(short_mask.begin(), short_mask.end(), long_mask.begin()));
}

// Ethereum's keccak256 test vectors.
TEST(Keccak, KnownVectors) {
  EXPECT_EQ(to_hex(keccak256("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
  EXPECT_EQ(to_hex(keccak256("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
  EXPECT_EQ(to_hex(keccak256("testing")),
            "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02");
}

TEST(Keccak, MultiBlockInput) {
  // > rate (136 bytes) to exercise the absorb loop.
  const Bytes data(500, 0x61);
  EXPECT_EQ(keccak256(data).size(), 32u);
  EXPECT_EQ(keccak256(data), keccak256(data));
  EXPECT_NE(keccak256(data), keccak256(Bytes(501, 0x61)));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  const Bytes ba = a.bytes(64), bb = b.bytes(64), bc = c.bytes(64);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::array<int, 8> counts{};
  for (int i = 0; i < 8000; ++i) counts[rng.uniform(8)]++;
  for (const int c : counts) EXPECT_GT(c, 700);  // crude uniformity check
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child1 = parent.fork("a");
  Rng child2 = parent.fork("a");  // second fork advances parent state
  EXPECT_NE(child1.bytes(32), child2.bytes(32));
}

TEST(BigInt, ByteCodecRoundTrip) {
  const BigInt v = bigint_from_decimal("123456789012345678901234567890");
  const Bytes enc = bigint_to_bytes(v);
  EXPECT_EQ(bigint_from_bytes(enc), v);
  const Bytes padded = bigint_to_bytes(v, 32);
  EXPECT_EQ(padded.size(), 32u);
  EXPECT_EQ(bigint_from_bytes(padded), v);
  EXPECT_THROW(bigint_to_bytes(v, 4), std::invalid_argument);
}

TEST(BigInt, ZeroEncoding) {
  EXPECT_TRUE(bigint_to_bytes(BigInt(0)).empty());
  EXPECT_EQ(bigint_to_bytes(BigInt(0), 4), Bytes({0, 0, 0, 0}));
}

TEST(BigInt, ModPowAndInverse) {
  const BigInt m = bigint_from_decimal("1000000007");
  EXPECT_EQ(mod_pow(2, 10, m), 1024);
  const BigInt inv = mod_inverse(12345, m);
  EXPECT_EQ((inv * 12345) % m, 1);
  EXPECT_THROW(mod_inverse(BigInt(6), BigInt(12)), std::domain_error);
}

TEST(BigInt, MillerRabinAgreesOnSmallNumbers) {
  Rng rng(11);
  for (int n = 2; n < 500; ++n) {
    bool naive_prime = n >= 2;
    for (int d = 2; d * d <= n; ++d) {
      if (n % d == 0) {
        naive_prime = false;
        break;
      }
    }
    EXPECT_EQ(is_probable_prime(BigInt(n), rng), naive_prime) << "n=" << n;
  }
}

TEST(BigInt, MillerRabinKnownLargeValues) {
  Rng rng(13);
  // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite.
  EXPECT_TRUE(is_probable_prime((BigInt(1) << 127) - 1, rng));
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) + 1, rng));
}

TEST(BigInt, RandomPrimeHasRequestedShape) {
  Rng rng(17);
  const BigInt p = random_prime(rng, 128);
  EXPECT_EQ(mpz_sizeinbase(p.get_mpz_t(), 2), 128u);
  EXPECT_TRUE(is_probable_prime(p, rng));
  // Top two bits set => product of two such primes has exactly 256 bits.
  EXPECT_TRUE(mpz_tstbit(p.get_mpz_t(), 126));
}

TEST(BigInt, RandomBelowIsInRange) {
  Rng rng(19);
  const BigInt bound = bigint_from_decimal("98765432109876543210");
  for (int i = 0; i < 50; ++i) {
    const BigInt v = random_below(rng, bound);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, bound);
  }
}

}  // namespace
}  // namespace zl
