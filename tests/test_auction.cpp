// Sealed-bid uniform-price reverse auction policy: native semantics, exact
// gadget agreement (including adversarial out-of-range bids), reward-proof
// round trips, and an end-to-end procurement auction on the test net.
#include <gtest/gtest.h>

#include "zebralancer/scenario.h"

namespace zl::zebralancer {
namespace {

std::vector<Fr> bids(const std::vector<std::uint64_t>& vals) {
  std::vector<Fr> out;
  for (const auto v : vals) out.push_back(Fr::from_u64(v));
  return out;
}

TEST(AuctionPolicy, UniformPriceBasics) {
  const SealedBidAuctionPolicy policy(2);  // two winners
  // Bids 30, 10, 20, 40: winners are 10 and 20; clearing price = 30.
  EXPECT_EQ(policy.rewards(bids({30, 10, 20, 40}), 1000),
            (std::vector<std::uint64_t>{0, 30, 30, 0}));
  // Clearing price capped at the share.
  EXPECT_EQ(policy.rewards(bids({30, 10, 20, 40}), 25),
            (std::vector<std::uint64_t>{0, 25, 25, 0}));
  // Fewer valid bids than winners: everyone valid wins at the full share.
  EXPECT_EQ(policy.rewards(bids({0, 10, 0, 0}), 1000),
            (std::vector<std::uint64_t>{0, 1000, 0, 0}));
  // Exactly k valid bids: no (k+1)-th bid, so the share clears.
  EXPECT_EQ(policy.rewards(bids({10, 20, 0, 0}), 1000),
            (std::vector<std::uint64_t>{1000, 1000, 0, 0}));
}

TEST(AuctionPolicy, TiesBreakTowardEarlierSubmission) {
  const SealedBidAuctionPolicy policy(1);
  // Equal lowest bids: the earlier submission wins; price = the tie value.
  EXPECT_EQ(policy.rewards(bids({20, 20, 50}), 1000),
            (std::vector<std::uint64_t>{20, 0, 0}));
}

TEST(AuctionPolicy, InvalidBidsExcluded) {
  const SealedBidAuctionPolicy policy(2);
  // 0 = no bid (also the ⊥ placeholder); 2^16 = out of range.
  EXPECT_EQ(policy.rewards(bids({0, 5, 1u << 16, 7}), 1000),
            (std::vector<std::uint64_t>{0, 1000, 0, 1000}));
  // A malicious huge field element is just as invalid.
  std::vector<Fr> evil = bids({5, 7, 0, 0});
  evil[2] = Fr::from_bigint(Fr::modulus_bigint() - 12345);
  const auto rewards = policy.rewards(evil, 1000);
  EXPECT_EQ(rewards[2], 0u);
  EXPECT_EQ(rewards[0], 1000u);
}

TEST(AuctionPolicy, RegistryAndValidation) {
  EXPECT_EQ(IncentivePolicy::by_name("auction:3")->name(), "auction:3");
  EXPECT_EQ(IncentivePolicy::by_name("auction:3")->bottom(), Fr::zero());
  EXPECT_THROW(SealedBidAuctionPolicy(0), std::invalid_argument);
}

TEST(AuctionPolicy, GadgetAgreesWithNative) {
  Rng rng(951);
  const SealedBidAuctionPolicy policy(2);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Fr> answers;
    for (int i = 0; i < 4; ++i) {
      switch (rng.uniform(5)) {
        case 0:
          answers.push_back(Fr::zero());  // no bid
          break;
        case 1:
          answers.push_back(Fr::from_bigint(random_below(rng, Fr::modulus_bigint())));  // garbage
          break;
        default:
          answers.push_back(Fr::from_u64(1 + rng.uniform((1u << 16) - 1)));
          break;
      }
    }
    const std::uint64_t share = 1 + rng.uniform(100'000);
    const std::vector<std::uint64_t> native = policy.rewards(answers, share);

    snark::CircuitBuilder b;
    std::vector<snark::Wire> wires;
    for (const Fr& a : answers) wires.push_back(b.witness(a));
    const auto gadget =
        policy.rewards_gadget(b, wires, snark::Wire::constant(Fr::from_u64(share)));
    ASSERT_TRUE(b.constraint_system().is_satisfied(b.assignment())) << "trial " << trial;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(gadget[i].value, Fr::from_u64(native[i])) << "trial " << trial << " slot " << i;
    }
  }
}

TEST(AuctionPolicy, DuplicateAndBoundaryBidsSweep) {
  const SealedBidAuctionPolicy policy(2);
  // Exhaustive-ish sweep over small bid tuples including duplicates.
  for (const std::uint64_t a : {0ull, 1ull, 2ull, 65535ull}) {
    for (const std::uint64_t c : {0ull, 1ull, 2ull, 65535ull}) {
      for (const std::uint64_t d : {1ull, 2ull}) {
        const std::vector<Fr> answers = bids({a, c, d});
        const auto native = policy.rewards(answers, 500);
        snark::CircuitBuilder b;
        std::vector<snark::Wire> wires;
        for (const Fr& v : answers) wires.push_back(b.witness(v));
        const auto gadget =
            policy.rewards_gadget(b, wires, snark::Wire::constant(Fr::from_u64(500)));
        ASSERT_TRUE(b.constraint_system().is_satisfied(b.assignment()));
        for (std::size_t i = 0; i < 3; ++i) {
          EXPECT_EQ(gadget[i].value, Fr::from_u64(native[i])) << a << "," << c << "," << d;
        }
      }
    }
  }
}

TEST(AuctionPolicy, RewardProofRoundTrip) {
  Rng rng(952);
  const RewardCircuitSpec spec{3, "auction:1"};
  const snark::Keypair keys = reward_setup(spec, rng);
  const TaskEncKeyPair enc = TaskEncKeyPair::generate(rng);
  std::vector<AnswerCiphertext> cts;
  for (const std::uint64_t bid : {500ull, 200ull, 350ull}) {
    cts.push_back(encrypt_answer(enc.epk, Fr::from_u64(bid), rng));
  }
  const RewardInstruction inst = prove_rewards(keys.pk, spec, enc, 1'000'000, cts, rng);
  // Winner: 200 (lowest); clearing price: 350 (2nd lowest).
  EXPECT_EQ(inst.rewards, (std::vector<std::uint64_t>{0, 350, 0}));
  EXPECT_TRUE(
      snark::verify(keys.vk, reward_statement(enc.epk, 1'000'000, cts, inst.rewards), inst.proof));
  // Overpaying the winner is unprovable/unverifiable.
  EXPECT_FALSE(snark::verify(
      keys.vk, reward_statement(enc.epk, 1'000'000, cts, {0, 400, 0}), inst.proof));
}

TEST(AuctionPolicy, EndToEndProcurementAuction) {
  // A crowdsensing procurement: the city buys 1 sensing slot from the
  // cheapest of 3 anonymous bidders.
  Rng rng(953);
  TestNet net({.merkle_depth = 6});
  const SystemParams params = make_system_params(6, {RewardCircuitSpec{3, "auction:1"}}, rng);

  auth::UserKey req_key = auth::UserKey::generate(rng);
  auto req_cert = net.register_participant("auction-requester", req_key.pk);
  std::vector<auth::UserKey> keys;
  std::vector<auth::Certificate> certs;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(auth::UserKey::generate(rng));
    certs.push_back(net.register_participant("bidder-" + std::to_string(i), keys.back().pk));
  }
  req_cert = net.ra().current_certificate(req_cert.leaf_index);
  for (int i = 0; i < 3; ++i) certs[i] = net.ra().current_certificate(certs[i].leaf_index);

  RequesterClient requester(net, params, req_key, req_cert, net.fork_rng("areq"));
  const chain::Address task = requester.publish(
      {.budget = 3'000'000, .num_answers = 3, .policy_name = "auction:1"},
      net.on_chain_registry_root());

  const std::uint64_t bid_values[3] = {900, 400, 650};
  std::vector<WorkerClient> bidders;
  std::vector<Bytes> pending;
  for (int i = 0; i < 3; ++i) {
    bidders.emplace_back(net, params, keys[i], certs[i], net.fork_rng("bid" + std::to_string(i)));
    pending.push_back(bidders.back().submit_answer(task, Fr::from_u64(bid_values[i])));
  }
  for (const Bytes& h : pending) {
    while (!net.client_node().chain().find_receipt(h).has_value()) net.network().run_for(50);
  }
  const std::vector<std::uint64_t> rewards = requester.instruct_rewards();
  // Bidder 1 wins at the second-lowest price 650.
  EXPECT_EQ(rewards, (std::vector<std::uint64_t>{0, 650, 0}));
  const auto& state = net.client_node().chain().state();
  EXPECT_EQ(state.balance_of(task), 0u);
}

}  // namespace
}  // namespace zl::zebralancer
