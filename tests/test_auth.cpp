// Security-game tests for common-prefix-linkable anonymous authentication,
// mirroring the paper's Definitions 1 (common-prefix-linkability) and 2
// (anonymity/unlinkability), plus correctness and unforgeability.
#include <gtest/gtest.h>

#include "auth/cpl_auth.h"

namespace zl::auth {
namespace {

constexpr unsigned kDepth = 8;

// Shared fixture: one Setup + RA + two registered honest users (W0, W1 as in
// the paper's anonymity game).
class CplAuthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng = new Rng(201);
    params = new AuthParams(auth_setup(kDepth, *rng));
    ra = new RegistrationAuthority(kDepth);
    w0 = new UserKey(UserKey::generate(*rng));
    w1 = new UserKey(UserKey::generate(*rng));
    cert0 = new Certificate(ra->register_identity("worker-0", w0->pk));
    cert1 = new Certificate(ra->register_identity("worker-1", w1->pk));
    // Paths must be refreshed after later registrations.
    *cert0 = ra->current_certificate(cert0->leaf_index);
    *cert1 = ra->current_certificate(cert1->leaf_index);
  }
  static void TearDownTestSuite() {
    delete cert1;
    delete cert0;
    delete w1;
    delete w0;
    delete ra;
    delete params;
    delete rng;
  }

  static Rng* rng;
  static AuthParams* params;
  static RegistrationAuthority* ra;
  static UserKey *w0, *w1;
  static Certificate *cert0, *cert1;
};
Rng* CplAuthTest::rng = nullptr;
AuthParams* CplAuthTest::params = nullptr;
RegistrationAuthority* CplAuthTest::ra = nullptr;
UserKey* CplAuthTest::w0 = nullptr;
UserKey* CplAuthTest::w1 = nullptr;
Certificate* CplAuthTest::cert0 = nullptr;
Certificate* CplAuthTest::cert1 = nullptr;

TEST_F(CplAuthTest, Correctness) {
  const Bytes prefix = to_bytes("task-contract-address-0xabc");
  const Bytes rest = to_bytes("worker-address||ciphertext");
  const Attestation att =
      authenticate(*params, prefix, rest, *w0, *cert0, ra->registry_root(), *rng);
  EXPECT_TRUE(verify(*params, prefix, rest, ra->registry_root(), att));
}

TEST_F(CplAuthTest, VerificationBindsEveryStatementComponent) {
  const Bytes prefix = to_bytes("task-A");
  const Bytes rest = to_bytes("answer-1");
  const Fr root = ra->registry_root();
  const Attestation att = authenticate(*params, prefix, rest, *w0, *cert0, root, *rng);
  EXPECT_TRUE(verify(*params, prefix, rest, root, att));
  // Any component substitution must fail.
  EXPECT_FALSE(verify(*params, to_bytes("task-B"), rest, root, att));
  EXPECT_FALSE(verify(*params, prefix, to_bytes("answer-2"), root, att));
  EXPECT_FALSE(verify(*params, prefix, rest, root + Fr::one(), att));
  Attestation tampered = att;
  tampered.t1 = att.t1 + Fr::one();
  EXPECT_FALSE(verify(*params, prefix, rest, root, tampered));
  tampered = att;
  tampered.t2 = att.t2 + Fr::one();
  EXPECT_FALSE(verify(*params, prefix, rest, root, tampered));
  tampered = att;
  tampered.proof.a = tampered.proof.a + G1::generator();
  EXPECT_FALSE(verify(*params, prefix, rest, root, tampered));
}

TEST_F(CplAuthTest, CommonPrefixLinkability) {
  // Same user, same prefix, different message bodies => linked.
  const Bytes prefix = to_bytes("task-X");
  const Fr root = ra->registry_root();
  const Attestation a1 = authenticate(*params, prefix, to_bytes("m1"), *w0, *cert0, root, *rng);
  const Attestation a2 = authenticate(*params, prefix, to_bytes("m2"), *w0, *cert0, root, *rng);
  EXPECT_TRUE(link(a1, a2));
  EXPECT_TRUE(verify(*params, prefix, to_bytes("m1"), root, a1));
  EXPECT_TRUE(verify(*params, prefix, to_bytes("m2"), root, a2));
}

TEST_F(CplAuthTest, DifferentUsersSamePrefixUnlinked) {
  const Bytes prefix = to_bytes("task-X");
  const Fr root = ra->registry_root();
  const Attestation a0 = authenticate(*params, prefix, to_bytes("m"), *w0, *cert0, root, *rng);
  const Attestation a1 = authenticate(*params, prefix, to_bytes("m"), *w1, *cert1, root, *rng);
  EXPECT_FALSE(link(a0, a1));
}

TEST_F(CplAuthTest, SameUserDifferentPrefixesUnlinked) {
  // The anonymity side: across tasks, the same worker is unlinkable.
  const Fr root = ra->registry_root();
  const Attestation a1 =
      authenticate(*params, to_bytes("task-1"), to_bytes("m"), *w0, *cert0, root, *rng);
  const Attestation a2 =
      authenticate(*params, to_bytes("task-2"), to_bytes("m"), *w0, *cert0, root, *rng);
  EXPECT_FALSE(link(a1, a2));
  // Neither tag repeats anywhere across the two transcripts.
  EXPECT_NE(a1.t1, a2.t1);
  EXPECT_NE(a1.t2, a2.t2);
  EXPECT_NE(a1.t1, a2.t2);
}

TEST_F(CplAuthTest, TranscriptContainsNoIdentityData) {
  // Anonymity sanity: the serialized attestation never embeds pk or sk.
  const Fr root = ra->registry_root();
  const Attestation att =
      authenticate(*params, to_bytes("task-Z"), to_bytes("m"), *w0, *cert0, root, *rng);
  const std::string wire = to_hex(att.to_bytes());
  EXPECT_EQ(wire.find(to_hex(w0->pk.to_bytes())), std::string::npos);
  EXPECT_EQ(wire.find(to_hex(w0->sk.to_bytes())), std::string::npos);
  EXPECT_EQ(att.to_bytes().size(), Attestation::kByteSize);
}

TEST_F(CplAuthTest, MultiSubmissionGamePigeonhole) {
  // Definition 1's game: with q = 2 corrupted certificates, q+1 = 3
  // same-prefix attestations must contain a linked pair.
  const Bytes prefix = to_bytes("one-task");
  const Fr root = ra->registry_root();
  const std::vector<Attestation> atts = {
      authenticate(*params, prefix, to_bytes("a"), *w0, *cert0, root, *rng),
      authenticate(*params, prefix, to_bytes("b"), *w1, *cert1, root, *rng),
      authenticate(*params, prefix, to_bytes("c"), *w0, *cert0, root, *rng)};
  bool linked_pair_found = false;
  for (std::size_t i = 0; i < atts.size(); ++i) {
    for (std::size_t j = i + 1; j < atts.size(); ++j) {
      if (link(atts[i], atts[j])) linked_pair_found = true;
    }
  }
  EXPECT_TRUE(linked_pair_found);
}

TEST_F(CplAuthTest, UnforgeabilityUncertifiedKeyCannotAuthenticate) {
  // A key pair never registered at the RA has no valid witness.
  const UserKey rogue = UserKey::generate(*rng);
  Certificate fake;
  fake.leaf_index = 0;
  fake.path = cert0->path;  // stolen path for someone else's leaf
  EXPECT_THROW(
      authenticate(*params, to_bytes("t"), to_bytes("m"), rogue, fake, ra->registry_root(), *rng),
      std::invalid_argument);
}

TEST_F(CplAuthTest, StaleRootRejected) {
  // An attestation computed against an outdated registry root must fail
  // against the current one (and vice versa).
  RegistrationAuthority fresh_ra(kDepth);
  const UserKey u = UserKey::generate(*rng);
  const Certificate cert = fresh_ra.register_identity("only-user", u.pk);
  const Fr old_root = fresh_ra.registry_root();
  const Attestation att =
      authenticate(*params, to_bytes("p"), to_bytes("m"), u, cert, old_root, *rng);
  EXPECT_TRUE(verify(*params, to_bytes("p"), to_bytes("m"), old_root, att));
  fresh_ra.register_identity("second-user", UserKey::generate(*rng).pk);
  EXPECT_FALSE(verify(*params, to_bytes("p"), to_bytes("m"), fresh_ra.registry_root(), att));
}

TEST_F(CplAuthTest, SerializationRoundTrip) {
  const Fr root = ra->registry_root();
  const Attestation att =
      authenticate(*params, to_bytes("p"), to_bytes("m"), *w1, *cert1, root, *rng);
  const Attestation decoded = Attestation::from_bytes(att.to_bytes());
  EXPECT_TRUE(verify(*params, to_bytes("p"), to_bytes("m"), root, decoded));
  EXPECT_TRUE(link(att, decoded));
  EXPECT_THROW(Attestation::from_bytes(Bytes(10)), std::invalid_argument);
}

TEST(RegistrationAuthority, RejectsDuplicates) {
  Rng rng(202);
  RegistrationAuthority ra(4);
  const UserKey u = UserKey::generate(rng);
  ra.register_identity("alice", u.pk);
  EXPECT_THROW(ra.register_identity("alice", UserKey::generate(rng).pk), std::invalid_argument);
  EXPECT_THROW(ra.register_identity("alice-again", u.pk), std::invalid_argument);
  EXPECT_EQ(ra.num_registered(), 1u);
  EXPECT_THROW(ra.current_certificate(5), std::out_of_range);
}

TEST(UserKey, KeyDerivationIsDeterministic) {
  Rng rng(203);
  const UserKey u = UserKey::generate(rng);
  EXPECT_EQ(u.pk, mimc_compress(u.sk, Fr::zero()));
  const UserKey v = UserKey::generate(rng);
  EXPECT_NE(u.sk, v.sk);
  EXPECT_NE(u.pk, v.pk);
}

}  // namespace
}  // namespace zl::auth
