// Tests for the non-anonymous mode (paper §VI last paragraph) and for the
// k-submissions-per-identity extension (footnote 11).
#include <gtest/gtest.h>

#include "zebralancer/classic_clients.h"
#include "zebralancer/scenario.h"

namespace zl::zebralancer {
namespace {

// 1024-bit RSA keeps unit tests fast; 2048-bit is exercised in test_pkc and
// the ablation bench.
constexpr int kRsaBits = 1024;

TEST(ClassicAuth, CertifyAuthenticateVerify) {
  Rng rng(601);
  auth::ClassicRegistrationAuthority ra(rng, kRsaBits);
  const auth::ClassicUserKey user = auth::ClassicUserKey::generate(rng, kRsaBits);
  const auth::ClassicCertificate cert = ra.certify("alice", user.key.pub);

  const Bytes prefix = to_bytes("task-A"), rest = to_bytes("message");
  const auth::ClassicAttestation att = auth::classic_authenticate(prefix, rest, user, cert);
  EXPECT_TRUE(auth::classic_verify(prefix, rest, ra.master_public_key(), att));
  // Binding: any component substitution fails.
  EXPECT_FALSE(auth::classic_verify(to_bytes("task-B"), rest, ra.master_public_key(), att));
  EXPECT_FALSE(auth::classic_verify(prefix, to_bytes("other"), ra.master_public_key(), att));
  auth::ClassicAttestation bad = att;
  bad.signature[4] ^= 1;
  EXPECT_FALSE(auth::classic_verify(prefix, rest, ra.master_public_key(), bad));
  bad = att;
  bad.certificate[4] ^= 1;
  EXPECT_FALSE(auth::classic_verify(prefix, rest, ra.master_public_key(), bad));
  bad = att;
  bad.public_key = Bytes(12, 0x01);
  EXPECT_FALSE(auth::classic_verify(prefix, rest, ra.master_public_key(), bad));
}

TEST(ClassicAuth, UncertifiedKeyRejected) {
  Rng rng(602);
  auth::ClassicRegistrationAuthority ra(rng, kRsaBits);
  auth::ClassicRegistrationAuthority rogue(rng, kRsaBits);
  const auth::ClassicUserKey user = auth::ClassicUserKey::generate(rng, kRsaBits);
  // Certified by the rogue RA, not the real one.
  const auth::ClassicCertificate cert = rogue.certify("mallory", user.key.pub);
  const auth::ClassicAttestation att =
      auth::classic_authenticate(to_bytes("p"), to_bytes("m"), user, cert);
  EXPECT_TRUE(auth::classic_verify(to_bytes("p"), to_bytes("m"), rogue.master_public_key(), att));
  EXPECT_FALSE(auth::classic_verify(to_bytes("p"), to_bytes("m"), ra.master_public_key(), att));
}

TEST(ClassicAuth, LinkIsIdentityEquality) {
  Rng rng(603);
  auth::ClassicRegistrationAuthority ra(rng, kRsaBits);
  const auth::ClassicUserKey u1 = auth::ClassicUserKey::generate(rng, kRsaBits);
  const auth::ClassicUserKey u2 = auth::ClassicUserKey::generate(rng, kRsaBits);
  const auto c1 = ra.certify("u1", u1.key.pub);
  const auto c2 = ra.certify("u2", u2.key.pub);
  const auto a1 = auth::classic_authenticate(to_bytes("p"), to_bytes("m1"), u1, c1);
  const auto a2 = auth::classic_authenticate(to_bytes("q"), to_bytes("m2"), u1, c1);
  const auto a3 = auth::classic_authenticate(to_bytes("p"), to_bytes("m1"), u2, c2);
  // Unlike the anonymous scheme, classic attestations link EVERYWHERE —
  // even across different prefixes. That is the privacy cost.
  EXPECT_TRUE(auth::classic_link(a1, a2));
  EXPECT_FALSE(auth::classic_link(a1, a3));
}

TEST(ClassicAuth, RaRejectsDuplicates) {
  Rng rng(604);
  auth::ClassicRegistrationAuthority ra(rng, kRsaBits);
  const auth::ClassicUserKey user = auth::ClassicUserKey::generate(rng, kRsaBits);
  ra.certify("alice", user.key.pub);
  EXPECT_THROW(ra.certify("alice", auth::ClassicUserKey::generate(rng, kRsaBits).key.pub),
               std::invalid_argument);
  EXPECT_THROW(ra.certify("alice2", user.key.pub), std::invalid_argument);
}

TEST(ClassicAuth, SerializationRoundTrip) {
  Rng rng(605);
  auth::ClassicRegistrationAuthority ra(rng, kRsaBits);
  const auth::ClassicUserKey user = auth::ClassicUserKey::generate(rng, kRsaBits);
  const auto cert = ra.certify("alice", user.key.pub);
  const auto att = auth::classic_authenticate(to_bytes("p"), to_bytes("m"), user, cert);
  const auto decoded = auth::ClassicAttestation::from_bytes(att.to_bytes());
  EXPECT_TRUE(auth::classic_verify(to_bytes("p"), to_bytes("m"), ra.master_public_key(), decoded));
  EXPECT_EQ(auth::ClassicCertificate::from_bytes(cert.to_bytes()).ra_signature,
            cert.ra_signature);
  Bytes trailing = att.to_bytes();
  trailing.push_back(0);
  EXPECT_THROW(auth::ClassicAttestation::from_bytes(trailing), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: a classic-mode task on the test net, and the k-submission
// extension on an anonymous task.
// ---------------------------------------------------------------------------

class ClassicE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng = new Rng(606);
    net = new TestNet({.merkle_depth = 6});
    params = new SystemParams(
        make_system_params(6, {RewardCircuitSpec{3, "majority-vote:4"}}, *rng));
    classic_ra = new auth::ClassicRegistrationAuthority(*rng, kRsaBits);
  }
  static void TearDownTestSuite() {
    delete classic_ra;
    delete params;
    delete net;
    delete rng;
  }
  static chain::Receipt confirm(const Bytes& tx_hash) {
    for (;;) {
      net->network().run_for(50);
      const auto receipt = net->client_node().chain().find_receipt(tx_hash);
      if (receipt.has_value()) return *receipt;
    }
  }
  static Rng* rng;
  static TestNet* net;
  static SystemParams* params;
  static auth::ClassicRegistrationAuthority* classic_ra;
};
Rng* ClassicE2eTest::rng = nullptr;
TestNet* ClassicE2eTest::net = nullptr;
SystemParams* ClassicE2eTest::params = nullptr;
auth::ClassicRegistrationAuthority* ClassicE2eTest::classic_ra = nullptr;

TEST_F(ClassicE2eTest, FullClassicTask) {
  const auth::ClassicUserKey req_key = auth::ClassicUserKey::generate(*rng, kRsaBits);
  const auto req_cert = classic_ra->certify("classic-requester", req_key.key.pub);
  ClassicRequesterClient requester(*net, *params, req_key, req_cert,
                                   classic_ra->master_public_key(), net->fork_rng("creq"));
  const chain::Address task = requester.publish(
      {.budget = 3'000'000, .num_answers = 3, .policy_name = "majority-vote:4"});

  std::vector<auth::ClassicUserKey> keys;
  std::vector<std::unique_ptr<ClassicWorkerClient>> workers;
  std::vector<Bytes> pending;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(auth::ClassicUserKey::generate(*rng, kRsaBits));
    const auto cert = classic_ra->certify("classic-worker-" + std::to_string(i),
                                          keys.back().key.pub);
    workers.push_back(std::make_unique<ClassicWorkerClient>(
        *net, keys.back(), cert, net->fork_rng("cw" + std::to_string(i))));
    pending.push_back(workers.back()->submit_answer(task, Fr::from_u64(i == 2 ? 1 : 3)));
  }
  for (const Bytes& h : pending) {
    const chain::Receipt r = confirm(h);
    EXPECT_TRUE(r.success) << r.error;
  }
  ASSERT_TRUE(requester.collection_complete());

  const std::vector<std::uint64_t> rewards = requester.instruct_rewards();
  EXPECT_EQ(rewards, (std::vector<std::uint64_t>{1'000'000, 1'000'000, 0}));
  const auto& state = net->client_node().chain().state();
  EXPECT_EQ(state.balance_of(task), 0u);
  // On chain the workers' public keys are visible — the identity linkage
  // the anonymous mode hides.
  const auto* contract = net->client_node().chain().state().contract_as<TaskContract>(task);
  EXPECT_FALSE(contract->submissions()[0].classic_pk.empty());
}

TEST_F(ClassicE2eTest, ClassicDoubleSubmissionRejected) {
  const auth::ClassicUserKey req_key = auth::ClassicUserKey::generate(*rng, kRsaBits);
  const auto req_cert = classic_ra->certify("classic-requester-2", req_key.key.pub);
  ClassicRequesterClient requester(*net, *params, req_key, req_cert,
                                   classic_ra->master_public_key(), net->fork_rng("creq2"));
  const chain::Address task = requester.publish(
      {.budget = 3'000'000, .num_answers = 3, .policy_name = "majority-vote:4"});

  const auth::ClassicUserKey key = auth::ClassicUserKey::generate(*rng, kRsaBits);
  const auto cert = classic_ra->certify("greedy-classic", key.key.pub);
  ClassicWorkerClient first(*net, key, cert, net->fork_rng("g1"));
  ClassicWorkerClient second(*net, key, cert, net->fork_rng("g2"));
  EXPECT_TRUE(confirm(first.submit_answer(task, Fr::from_u64(1))).success);
  const chain::Receipt dup = confirm(second.submit_answer(task, Fr::from_u64(2)));
  EXPECT_FALSE(dup.success);
  EXPECT_NE(dup.error.find("double submission"), std::string::npos) << dup.error;
}

TEST_F(ClassicE2eTest, KSubmissionExtensionAllowsExactlyK) {
  // Footnote 11: k = 2 answers per identity on an ANONYMOUS task. The same
  // worker may submit twice; the third linked attestation is dropped.
  auth::UserKey req_key = auth::UserKey::generate(*rng);
  auto req_cert = net->register_participant("anon-requester-k", req_key.pk);
  auth::UserKey worker_key = auth::UserKey::generate(*rng);
  auto worker_cert = net->register_participant("anon-worker-k", worker_key.pk);
  req_cert = net->ra().current_certificate(req_cert.leaf_index);
  worker_cert = net->ra().current_certificate(worker_cert.leaf_index);

  RequesterClient requester(*net, *params, req_key, req_cert, net->fork_rng("kreq"));
  const chain::Address task = requester.publish({.budget = 3'000'000,
                                                 .num_answers = 3,
                                                 .policy_name = "majority-vote:4",
                                                 .max_submissions_per_identity = 2},
                                                net->on_chain_registry_root());

  WorkerClient w1(*net, *params, worker_key, worker_cert, net->fork_rng("k1"));
  WorkerClient w2(*net, *params, worker_key, worker_cert, net->fork_rng("k2"));
  WorkerClient w3(*net, *params, worker_key, worker_cert, net->fork_rng("k3"));
  EXPECT_TRUE(confirm(w1.submit_answer(task, Fr::from_u64(1))).success);
  EXPECT_TRUE(confirm(w2.submit_answer(task, Fr::from_u64(2))).success)
      << "second submission is allowed at k = 2";
  const chain::Receipt third = confirm(w3.submit_answer(task, Fr::from_u64(3)));
  EXPECT_FALSE(third.success) << "third must be dropped";
  EXPECT_NE(third.error.find("double submission"), std::string::npos) << third.error;
}

}  // namespace
}  // namespace zl::zebralancer
