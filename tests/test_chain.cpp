// Blockchain substrate tests: transactions, blocks/PoW, state transitions,
// the contract runtime + gas, fork choice, and the network simulator
// (including the transaction-reordering adversary).
#include <gtest/gtest.h>

#include "chain/network.h"

namespace zl::chain {
namespace {

// A minimal test contract: counts calls, stores a value, can pay out.
class CounterContract : public Contract {
 public:
  void on_deploy(CallContext& ctx, const Bytes& args) override {
    ctx.charge(GasSchedule::kStorageWrite);
    if (!args.empty()) initial_ = args[0];
    count_ = initial_;
  }
  void invoke(CallContext& ctx, const std::string& method, const Bytes& args) override {
    if (method == "increment") {
      ctx.charge(GasSchedule::kStorageWrite);
      ++count_;
      ctx.log("incremented");
    } else if (method == "payout") {
      if (args.size() != 8) throw ContractRevert("bad args");
      const std::uint64_t amount = read_u64_be(args, 0);
      if (!ctx.transfer(ctx.sender, amount)) throw ContractRevert("insufficient balance");
    } else if (method == "burn_gas") {
      for (;;) ctx.charge(1000);
    } else {
      throw ContractRevert("unknown method");
    }
  }
  std::uint64_t count() const { return count_; }

  // Snapshot hooks so chain tests exercise the checkpoint-restore fast path.
  std::optional<Bytes> snapshot_state() const override {
    Bytes out;
    append_u64_be(out, initial_);
    append_u64_be(out, count_);
    return out;
  }
  void restore_state(const Bytes& state) override {
    initial_ = read_u64_be(state, 0);
    count_ = read_u64_be(state, 8);
  }

 private:
  std::uint64_t initial_ = 0;
  std::uint64_t count_ = 0;
};

struct RegisterCounter {
  RegisterCounter() {
    ContractFactory::instance().register_type("counter",
                                              [] { return std::make_unique<CounterContract>(); });
  }
} register_counter;

GenesisConfig make_genesis(const std::vector<Address>& funded,
                           std::uint64_t amount = 50'000'000) {
  GenesisConfig g;
  for (const Address& a : funded) g.allocations.push_back({a, amount});
  // Expected block interval (one 16 h/ms miner): ~2048/16 = 128 ms — an
  // order of magnitude above gossip latency, like a healthy network.
  g.difficulty = 2048;
  return g;
}

TEST(Address, DerivationAndComparison) {
  const Address a = Address::from_hex("00112233445566778899aabbccddeeff00112233");
  EXPECT_EQ(a.to_hex(), "00112233445566778899aabbccddeeff00112233");
  EXPECT_TRUE(Address().is_zero());
  EXPECT_FALSE(a.is_zero());
  const Address c1 = Address::for_contract(a, 0);
  const Address c2 = Address::for_contract(a, 1);
  EXPECT_NE(c1, c2);
  EXPECT_THROW(Address::from_bytes(Bytes(19)), std::invalid_argument);
}

TEST(Tx, SignAndVerifyRoundTrip) {
  Rng rng(301);
  Wallet wallet(rng);
  const Transaction tx =
      wallet.make_transaction(Address(), 100, 30000, "counter", to_bytes("args"));
  EXPECT_TRUE(tx.verify_signature());
  EXPECT_TRUE(tx.is_contract_creation());
  const Transaction decoded = Transaction::from_bytes(tx.to_bytes());
  EXPECT_TRUE(decoded.verify_signature());
  EXPECT_EQ(decoded.hash(), tx.hash());

  Transaction tampered = tx;
  tampered.value = 999;
  EXPECT_FALSE(tampered.verify_signature());
  tampered = tx;
  tampered.from = Address::for_contract(tx.from, 7);
  EXPECT_FALSE(tampered.verify_signature());
}

TEST(Tx, NoncesIncrease) {
  Rng rng(302);
  Wallet wallet(rng);
  const Address to = Address::from_hex("1122334455667788990011223344556677889900");
  EXPECT_EQ(wallet.make_transaction(to, 1, 21000, "", {}).nonce, 0u);
  EXPECT_EQ(wallet.make_transaction(to, 1, 21000, "", {}).nonce, 1u);
}

TEST(Block, TxRootAndPow) {
  Rng rng(303);
  Wallet wallet(rng);
  Block block;
  block.header.parent_hash = Bytes(32, 0x01);
  block.header.number = 1;
  block.header.difficulty = 2;  // half of all nonces succeed
  block.transactions.push_back(
      wallet.make_transaction(Address::for_contract(wallet.address(), 0), 5, 21000, "", {}));
  block.header.tx_root = Block::compute_tx_root(block.transactions);
  while (!proof_of_work_valid(block.header)) ++block.header.nonce;
  EXPECT_TRUE(block.well_formed());

  // Tampering with the body breaks the root binding.
  Block bad = block;
  bad.transactions.clear();
  EXPECT_FALSE(bad.well_formed());

  // Serialization round trip.
  const Block decoded = block_from_bytes(block_to_bytes(block));
  EXPECT_EQ(decoded.hash(), block.hash());
  EXPECT_EQ(decoded.transactions.size(), 1u);
}

TEST(State, TransfersAndNonceRules) {
  Rng rng(304);
  Wallet alice(rng);
  Wallet bob(rng);
  const Address miner = Address::from_hex("00000000000000000000000000000000000000aa");
  ChainState state;
  state.credit(alice.address(), 1'000'000);

  const Transaction t1 = alice.make_transaction(bob.address(), 500, 21000, "", {});
  const Receipt r1 = state.apply_transaction(t1, 1, miner);
  EXPECT_TRUE(r1.success);
  EXPECT_EQ(state.balance_of(bob.address()), 500u);
  EXPECT_EQ(state.balance_of(miner), r1.gas_used);
  EXPECT_EQ(state.balance_of(alice.address()), 1'000'000 - 500 - r1.gas_used);
  EXPECT_EQ(state.nonce_of(alice.address()), 1u);

  // Replay (same nonce) is rejected as an invalid transaction.
  EXPECT_THROW(state.apply_transaction(t1, 2, miner), std::invalid_argument);
  // Nonce gap rejected.
  Transaction gap = alice.make_transaction(bob.address(), 1, 21000, "", {});
  gap.nonce = 5;
  EXPECT_FALSE(gap.verify_signature());  // signature covers the nonce
}

TEST(State, RejectsUnderfundedAndUnderGassed) {
  Rng rng(305);
  Wallet poor(rng);
  ChainState state;
  state.credit(poor.address(), 100);  // cannot afford gas
  const Address miner;
  const Transaction tx = poor.make_transaction(Address(), 0, 25000, "counter", {});
  EXPECT_THROW(state.apply_transaction(tx, 1, miner), std::invalid_argument);

  Wallet rich(rng);
  state.credit(rich.address(), 1'000'000);
  const Transaction low_gas = rich.make_transaction(Address(), 0, 100, "counter", {});
  EXPECT_THROW(state.apply_transaction(low_gas, 1, miner), std::invalid_argument);
}

TEST(State, ContractDeployInvokeAndRead) {
  Rng rng(306);
  Wallet owner(rng);
  ChainState state;
  state.credit(owner.address(), 10'000'000);
  const Address miner;

  const Transaction deploy =
      owner.make_transaction(Address(), 1000, 200000, "counter", Bytes{42});
  const Receipt r = state.apply_transaction(deploy, 1, miner);
  ASSERT_TRUE(r.success) << r.error;
  const Address contract = r.created_contract;
  EXPECT_TRUE(state.is_contract(contract));
  EXPECT_EQ(state.balance_of(contract), 1000u);
  EXPECT_EQ(state.contract_as<CounterContract>(contract)->count(), 42u);

  const Transaction call = owner.make_transaction(contract, 0, 100000, "increment", {});
  const Receipt rc = state.apply_transaction(call, 2, miner);
  EXPECT_TRUE(rc.success);
  EXPECT_EQ(rc.logs, std::vector<std::string>{"incremented"});
  EXPECT_EQ(state.contract_as<CounterContract>(contract)->count(), 43u);

  // Unknown method reverts; state (including attached value) is restored.
  const Transaction bad = owner.make_transaction(contract, 77, 100000, "nope", {});
  const Receipt rb = state.apply_transaction(bad, 3, miner);
  EXPECT_FALSE(rb.success);
  EXPECT_EQ(state.balance_of(contract), 1000u) << "attached value must be rolled back";
  EXPECT_GT(rb.gas_used, 0u) << "failed calls still consume gas";
}

TEST(State, ContractPayoutAndOutOfGas) {
  Rng rng(307);
  Wallet owner(rng);
  ChainState state;
  state.credit(owner.address(), 10'000'000);
  const Address miner;
  const Receipt dep = state.apply_transaction(
      owner.make_transaction(Address(), 5000, 200000, "counter", {}), 1, miner);
  const Address contract = dep.created_contract;

  Bytes amount;
  append_u64_be(amount, 3000);
  const Receipt pay = state.apply_transaction(
      owner.make_transaction(contract, 0, 100000, "payout", amount), 2, miner);
  EXPECT_TRUE(pay.success);
  EXPECT_EQ(state.balance_of(contract), 2000u);

  // Overdraft reverts.
  Bytes too_much;
  append_u64_be(too_much, 99999);
  const Receipt over = state.apply_transaction(
      owner.make_transaction(contract, 0, 100000, "payout", too_much), 3, miner);
  EXPECT_FALSE(over.success);
  EXPECT_EQ(state.balance_of(contract), 2000u);

  // Gas exhaustion fails the call but charges the full limit.
  const Receipt oog = state.apply_transaction(
      owner.make_transaction(contract, 0, 60000, "burn_gas", {}), 4, miner);
  EXPECT_FALSE(oog.success);
  EXPECT_EQ(oog.error, "out of gas");
  EXPECT_EQ(oog.gas_used, 60000u);
}

TEST(Blockchain, GenesisAndLinearGrowth) {
  Rng rng(308);
  Wallet alice(rng);
  const GenesisConfig genesis = make_genesis({alice.address()});
  Blockchain chain(genesis);
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.state().balance_of(alice.address()), 50'000'000u);

  Block b1;
  b1.header.parent_hash = chain.head_hash();
  b1.header.number = 1;
  b1.header.difficulty = genesis.difficulty;
  b1.transactions.push_back(
      alice.make_transaction(Address::for_contract(alice.address(), 9), 123, 21000, "", {}));
  b1.header.tx_root = Block::compute_tx_root(b1.transactions);
  while (!proof_of_work_valid(b1.header)) ++b1.header.nonce;
  EXPECT_TRUE(chain.add_block(b1));
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_FALSE(chain.add_block(b1)) << "duplicate rejected";
  EXPECT_TRUE(chain.find_receipt(b1.transactions[0].hash()).has_value());
  EXPECT_EQ(chain.confirmation_block(b1.transactions[0].hash()), 1u);

  // Unknown parent rejected.
  Block orphan = b1;
  orphan.header.parent_hash = Bytes(32, 0xee);
  orphan.header.number = 5;
  while (!proof_of_work_valid(orphan.header)) ++orphan.header.nonce;
  EXPECT_FALSE(chain.add_block(orphan));
}

TEST(Blockchain, ForkChoiceAdoptsLongerBranch) {
  Rng rng(309);
  Wallet alice(rng);
  const GenesisConfig genesis = make_genesis({alice.address()});
  Blockchain chain(genesis);

  const auto mine_on = [&](const Bytes& parent, std::uint64_t number, std::uint64_t stamp) {
    Block b;
    b.header.parent_hash = parent;
    b.header.number = number;
    b.header.difficulty = genesis.difficulty;
    b.header.timestamp = stamp;  // differentiates sibling blocks
    b.header.tx_root = Block::compute_tx_root({});
    while (!proof_of_work_valid(b.header)) ++b.header.nonce;
    return b;
  };

  const Block a1 = mine_on(chain.head_hash(), 1, 100);
  ASSERT_TRUE(chain.add_block(a1));
  EXPECT_EQ(chain.head_hash(), a1.hash());

  // A competing sibling does not displace the head (equal difficulty, tie
  // broken deterministically) ...
  const Block b1 = mine_on(a1.header.parent_hash, 1, 200);
  ASSERT_TRUE(chain.add_block(b1));
  // ... but a child of the sibling does (heavier branch).
  const Block b2 = mine_on(b1.hash(), 2, 300);
  ASSERT_TRUE(chain.add_block(b2));
  EXPECT_EQ(chain.head_hash(), b2.hash());
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.canonical_chain().size(), 3u);
}

TEST(Blockchain, DeepReorgMatchesFullReplay) {
  // Two long branches off genesis with different transaction histories;
  // switching onto each (both directions) must yield exactly the state a
  // fresh node replaying only that branch computes — even though the
  // checkpoint cache lets the reorg skip most of the replay.
  Rng rng(314);
  Wallet alice(rng), bob(rng), sink(rng);
  const GenesisConfig genesis = make_genesis({alice.address(), bob.address()});

  const auto mine = [&](const Bytes& parent, std::uint64_t number, std::uint64_t stamp,
                        std::vector<Transaction> txs) {
    Block b;
    b.header.parent_hash = parent;
    b.header.number = number;
    b.header.difficulty = genesis.difficulty;
    b.header.timestamp = stamp;
    b.transactions = std::move(txs);
    b.header.tx_root = Block::compute_tx_root(b.transactions);
    while (!proof_of_work_valid(b.header)) ++b.header.nonce;
    return b;
  };

  Blockchain chain(genesis);

  // Branch A: deploy a counter at height 1, then 31 increment blocks.
  std::vector<Block> branch_a;
  {
    Bytes parent = chain.head_hash();
    Block deploy_block = mine(
        parent, 1, 1000,
        {alice.make_transaction(Address(), 0, 200000, "counter", Bytes{7})});
    branch_a.push_back(deploy_block);
    parent = deploy_block.hash();
    const Address counter = Address::for_contract(alice.address(), 0);
    for (std::uint64_t n = 2; n <= 32; ++n) {
      Block b = mine(parent, n, 1000 + n,
                     {alice.make_transaction(counter, 0, 100000, "increment", {})});
      branch_a.push_back(b);
      parent = b.hash();
    }
  }
  // Branch B: 33 plain-transfer blocks (heavier than A).
  std::vector<Block> branch_b;
  {
    Bytes parent = chain.head_hash();
    for (std::uint64_t n = 1; n <= 33; ++n) {
      Block b = mine(parent, n, 2000 + n,
                     {bob.make_transaction(sink.address(), 10, 21000, "", {})});
      branch_b.push_back(b);
      parent = b.hash();
    }
  }

  for (const Block& b : branch_a) ASSERT_TRUE(chain.add_block(b));
  ASSERT_EQ(chain.head_hash(), branch_a.back().hash());
  EXPECT_GT(chain.checkpoint_count(), 0u) << "interval checkpoints must accumulate";

  // A -> B: the longer branch wins.
  for (const Block& b : branch_b) ASSERT_TRUE(chain.add_block(b));
  ASSERT_EQ(chain.head_hash(), branch_b.back().hash());
  {
    Blockchain replay(genesis);
    for (const Block& b : branch_b) ASSERT_TRUE(replay.add_block(b));
    ASSERT_EQ(replay.head_hash(), chain.head_hash());
    EXPECT_EQ(chain.state().snapshot_bytes(), replay.state().snapshot_bytes());
    EXPECT_EQ(chain.state().balance_of(sink.address()), 330u);
  }

  // B -> A: extend A past B and switch back.
  {
    Bytes parent = branch_a.back().hash();
    const Address counter = Address::for_contract(alice.address(), 0);
    for (std::uint64_t n = 33; n <= 35; ++n) {
      Block b = mine(parent, n, 3000 + n,
                     {alice.make_transaction(counter, 0, 100000, "increment", {})});
      branch_a.push_back(b);
      parent = b.hash();
    }
    ASSERT_TRUE(chain.add_block(branch_a[branch_a.size() - 3]));
    ASSERT_TRUE(chain.add_block(branch_a[branch_a.size() - 2]));
    ASSERT_TRUE(chain.add_block(branch_a.back()));
    ASSERT_EQ(chain.head_hash(), branch_a.back().hash());

    Blockchain replay(genesis);
    for (const Block& b : branch_a) ASSERT_TRUE(replay.add_block(b));
    ASSERT_EQ(replay.head_hash(), chain.head_hash());
    EXPECT_EQ(chain.state().snapshot_bytes(), replay.state().snapshot_bytes());
    const Address counter_addr = Address::for_contract(alice.address(), 0);
    ASSERT_NE(chain.state().contract_as<CounterContract>(counter_addr), nullptr);
    EXPECT_EQ(chain.state().contract_as<CounterContract>(counter_addr)->count(), 7u + 34u);
  }
}

TEST(Blockchain, InvalidBodyBlacklisted) {
  Rng rng(310);
  Wallet alice(rng);
  Wallet stranger(rng);  // no funds
  const GenesisConfig genesis = make_genesis({alice.address()});
  Blockchain chain(genesis);

  Block bad;
  bad.header.parent_hash = chain.head_hash();
  bad.header.number = 1;
  bad.header.difficulty = genesis.difficulty;
  bad.transactions.push_back(stranger.make_transaction(alice.address(), 1, 21000, "", {}));
  bad.header.tx_root = Block::compute_tx_root(bad.transactions);
  while (!proof_of_work_valid(bad.header)) ++bad.header.nonce;
  EXPECT_TRUE(chain.add_block(bad)) << "structurally valid, accepted into the store";
  EXPECT_EQ(chain.height(), 0u) << "but never adopted as head";
}

TEST(Network, MinersProduceBlocksAndConverge) {
  Rng rng(311);
  Wallet faucet(rng);
  const GenesisConfig genesis = make_genesis({faucet.address()});
  SimNetwork net({.base_latency_ms = 5, .jitter_ms = 3, .seed = 7});
  // The paper's test net: two miners + two full nodes.
  Wallet coinbase1(rng), coinbase2(rng);
  MinerNode miner1(net, genesis, coinbase1.address());
  MinerNode miner2(net, genesis, coinbase2.address());
  Node requester_node(net, genesis);
  Node worker_node(net, genesis);

  ASSERT_TRUE(net.run_until_height(5, 60'000));
  // Quiesce mining so gossip settles, then all four replicas must agree.
  miner1.set_enabled(false);
  miner2.set_enabled(false);
  net.run_for(500);
  EXPECT_EQ(requester_node.chain().head_hash(), worker_node.chain().head_hash());
  EXPECT_EQ(requester_node.chain().head_hash(), miner1.chain().head_hash());
  EXPECT_EQ(requester_node.chain().head_hash(), miner2.chain().head_hash());
  EXPECT_GE(miner1.blocks_mined() + miner2.blocks_mined(), 5u);
}

TEST(Network, TransactionsReachTheLedger) {
  Rng rng(312);
  Wallet alice(rng), bob(rng);
  const GenesisConfig genesis = make_genesis({alice.address()});
  SimNetwork net({.base_latency_ms = 5, .jitter_ms = 2, .seed = 8});
  Wallet coinbase(rng);
  MinerNode miner(net, genesis, coinbase.address());
  Node client(net, genesis);

  const Transaction tx = alice.make_transaction(bob.address(), 777, 21000, "", {});
  client.submit_transaction(tx);
  ASSERT_TRUE(net.run_until_height(3, 60'000));
  net.run_for(200);
  EXPECT_EQ(client.chain().state().balance_of(bob.address()), 777u);
  const auto receipt = client.chain().find_receipt(tx.hash());
  ASSERT_TRUE(receipt.has_value());
  EXPECT_TRUE(receipt->success);
}

TEST(Network, ReorderingAdversaryDelaysVictimTx) {
  // The §III adversary: reorder broadcast-but-unconfirmed transactions.
  Rng rng(313);
  Wallet victim(rng), attacker(rng), sink(rng);
  const GenesisConfig genesis = make_genesis({victim.address(), attacker.address()});
  SimNetwork net({.base_latency_ms = 5, .jitter_ms = 0, .seed = 9});
  Wallet coinbase(rng);
  MinerNode miner(net, genesis, coinbase.address());
  Node client(net, genesis);

  const Address victim_addr = victim.address();
  net.set_tx_delay_policy([victim_addr](const Transaction& tx) -> std::uint64_t {
    return tx.from == victim_addr ? 500 : 0;  // hold the victim's gossip back
  });

  const Transaction v = victim.make_transaction(sink.address(), 10, 21000, "", {});
  const Transaction a = attacker.make_transaction(sink.address(), 20, 21000, "", {});
  client.submit_transaction(v);
  client.submit_transaction(a);
  ASSERT_TRUE(net.run_until_height(2, 60'000));
  const auto vc = client.chain().confirmation_block(v.hash());
  const auto ac = client.chain().confirmation_block(a.hash());
  ASSERT_TRUE(ac.has_value());
  // The attacker's tx confirms strictly earlier than the victim's (which may
  // not even be in yet).
  if (vc.has_value()) {
    EXPECT_LT(*ac, *vc);
  }
}

}  // namespace
}  // namespace zl::chain
