// Tests for the paper's future-work extensions implemented in this repo:
// off-chain content-addressed storage (open question 2 / footnote 13) and
// the reputation registry (open question 1), plus the generic cross-
// contract call mechanism they ride on.
#include <gtest/gtest.h>

#include "chain/datastore.h"
#include "zebralancer/classic_clients.h"
#include "zebralancer/reputation.h"
#include "zebralancer/scenario.h"

namespace zl::zebralancer {
namespace {

TEST(OffChainStore, PutGetVerify) {
  chain::OffChainStore store;
  const Bytes blob = to_bytes("a 2MB image, conceptually");
  const Bytes digest = store.put(blob);
  EXPECT_EQ(digest.size(), 32u);
  EXPECT_TRUE(store.contains(digest));
  EXPECT_EQ(store.get(digest), blob);
  EXPECT_FALSE(store.get(Bytes(32, 0xee)).has_value());
  EXPECT_TRUE(chain::OffChainStore::verify(digest, blob));
  EXPECT_FALSE(chain::OffChainStore::verify(digest, to_bytes("tampered")));
  // Content addressing: same blob, same digest; idempotent size accounting.
  EXPECT_EQ(store.put(blob), digest);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.total_bytes(), blob.size());
}

TEST(ReputationRegistry, OwnerGatingAndScores) {
  chain::ChainState state;
  ReputationRegistryContract::register_type();
  Rng rng(801);
  chain::Wallet owner(rng), stranger(rng), reporter(rng);
  state.credit(owner.address(), 10'000'000);
  state.credit(stranger.address(), 10'000'000);
  state.credit(reporter.address(), 10'000'000);
  const chain::Address miner;

  const chain::Receipt dep = state.apply_transaction(
      owner.make_transaction(chain::Address(), 0, 200'000,
                             ReputationRegistryContract::kContractType, {}),
      1, miner);
  ASSERT_TRUE(dep.success) << dep.error;
  const chain::Address registry = dep.created_contract;

  // Stranger cannot authorize.
  const chain::Receipt bad_auth = state.apply_transaction(
      stranger.make_transaction(registry, 0, 100'000, "authorize",
                                reporter.address().to_bytes()),
      2, miner);
  EXPECT_FALSE(bad_auth.success);

  // Owner authorizes the reporter (an EOA here; task contracts in e2e).
  ASSERT_TRUE(state
                  .apply_transaction(owner.make_transaction(registry, 0, 100'000, "authorize",
                                                            reporter.address().to_bytes()),
                                     3, miner)
                  .success);

  const Bytes digest = keccak256(to_bytes("worker-pk"));
  const Bytes plus = ReputationRegistryContract::encode_record_args(digest, 1);
  // Unauthorized record rejected; authorized accepted.
  EXPECT_FALSE(
      state.apply_transaction(stranger.make_transaction(registry, 0, 100'000, "record", plus),
                              3, miner)
          .success);
  ASSERT_TRUE(
      state.apply_transaction(reporter.make_transaction(registry, 0, 100'000, "record", plus),
                              4, miner)
          .success);
  ASSERT_TRUE(
      state
          .apply_transaction(
              reporter.make_transaction(registry, 0, 100'000, "record",
                                        ReputationRegistryContract::encode_record_args(digest, -1)),
              5, miner)
          .success);
  const auto* contract = state.contract_as<ReputationRegistryContract>(registry);
  ASSERT_NE(contract, nullptr);
  EXPECT_EQ(contract->score(digest), 0);  // +1 then -1
  EXPECT_EQ(contract->score(keccak256(to_bytes("never-seen"))), 0);
}

class ExtensionE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng = new Rng(802);
    net = new TestNet({.merkle_depth = 6});
    ReputationRegistryContract::register_type();
    params = new SystemParams(
        make_system_params(6, {RewardCircuitSpec{2, "majority-vote:4"}}, *rng));
    classic_ra = new auth::ClassicRegistrationAuthority(*rng, 1024);
  }
  static void TearDownTestSuite() {
    delete classic_ra;
    delete params;
    delete net;
    delete rng;
  }
  static chain::Receipt confirm(const Bytes& tx_hash) {
    for (;;) {
      net->network().run_for(50);
      const auto receipt = net->client_node().chain().find_receipt(tx_hash);
      if (receipt.has_value()) return *receipt;
    }
  }
  static Rng* rng;
  static TestNet* net;
  static SystemParams* params;
  static auth::ClassicRegistrationAuthority* classic_ra;
};
Rng* ExtensionE2eTest::rng = nullptr;
TestNet* ExtensionE2eTest::net = nullptr;
SystemParams* ExtensionE2eTest::params = nullptr;
auth::ClassicRegistrationAuthority* ExtensionE2eTest::classic_ra = nullptr;

TEST_F(ExtensionE2eTest, DataIntensiveTaskUsesOffChainStorage) {
  // A "2 MB" image rides off-chain; only its digest is in the contract.
  const Bytes image = net->fork_rng("image").bytes(4096);

  auth::UserKey req_key = auth::UserKey::generate(*rng);
  auto req_cert = net->register_participant("data-requester", req_key.pk);
  auth::UserKey worker_key = auth::UserKey::generate(*rng);
  auto worker_cert = net->register_participant("data-worker", worker_key.pk);
  req_cert = net->ra().current_certificate(req_cert.leaf_index);
  worker_cert = net->ra().current_certificate(worker_cert.leaf_index);

  RequesterClient requester(*net, *params, req_key, req_cert, net->fork_rng("dreq"));
  TaskSpec spec{.budget = 2'000'000, .num_answers = 2, .policy_name = "majority-vote:4"};
  spec.task_data = image;
  const chain::Address task = requester.publish(spec, net->on_chain_registry_root());

  const auto* contract = net->client_node().chain().state().contract_as<TaskContract>(task);
  ASSERT_NE(contract, nullptr);
  EXPECT_EQ(contract->params().task_data_digest, Sha256::hash(image));

  // The worker fetches and digest-verifies the blob, then participates.
  WorkerClient worker(*net, *params, worker_key, worker_cert, net->fork_rng("dwork"));
  const auto fetched = worker.fetch_task_data(task);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, image);
  const chain::Receipt r = confirm(worker.submit_answer(task, Fr::from_u64(1)));
  EXPECT_TRUE(r.success) << r.error;
}

TEST_F(ExtensionE2eTest, ClassicTaskReportsReputation) {
  // Deploy a registry owned by a coordinator wallet.
  Rng orng = net->fork_rng("rep-owner");
  chain::Wallet owner(orng);
  net->fund(owner.address(), 10'000'000);
  const chain::Receipt dep = net->submit_and_confirm(owner.make_transaction(
      chain::Address(), 0, 200'000, ReputationRegistryContract::kContractType, {}));
  ASSERT_TRUE(dep.success) << dep.error;
  const chain::Address registry = dep.created_contract;

  // Classic-mode task wired to the registry.
  const auth::ClassicUserKey req_key = auth::ClassicUserKey::generate(*rng, 1024);
  const auto req_cert = classic_ra->certify("rep-requester", req_key.key.pub);
  ClassicRequesterClient requester(*net, *params, req_key, req_cert,
                                   classic_ra->master_public_key(), net->fork_rng("rreq"));
  TaskSpec spec{.budget = 2'000'000, .num_answers = 2, .policy_name = "majority-vote:4"};
  spec.reputation_registry = registry;
  const chain::Address task = requester.publish(spec);

  // The registry owner authorizes this task to report.
  ASSERT_TRUE(net->submit_and_confirm(
                     owner.make_transaction(registry, 0, 100'000, "authorize", task.to_bytes()))
                  .success);

  // Two workers: one agrees with the majority, one dissents.
  const auth::ClassicUserKey k0 = auth::ClassicUserKey::generate(*rng, 1024);
  const auth::ClassicUserKey k1 = auth::ClassicUserKey::generate(*rng, 1024);
  const auto c0 = classic_ra->certify("rep-w0", k0.key.pub);
  const auto c1 = classic_ra->certify("rep-w1", k1.key.pub);
  ClassicWorkerClient w0(*net, k0, c0, net->fork_rng("rw0"));
  ClassicWorkerClient w1(*net, k1, c1, net->fork_rng("rw1"));
  ASSERT_TRUE(confirm(w0.submit_answer(task, Fr::from_u64(2))).success);
  ASSERT_TRUE(confirm(w1.submit_answer(task, Fr::from_u64(2))).success);

  requester.instruct_rewards();

  const auto* reg =
      net->client_node().chain().state().contract_as<ReputationRegistryContract>(registry);
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->score(keccak256(k0.key.pub.to_bytes())), 1);
  EXPECT_EQ(reg->score(keccak256(k1.key.pub.to_bytes())), 1);
  EXPECT_EQ(reg->score(keccak256(req_key.key.pub.to_bytes())), 0);
}

TEST_F(ExtensionE2eTest, UnauthorizedReputationReportDoesNotBlockPayout) {
  // A task wired to a registry that never authorized it: the payout still
  // completes; the reputation report is skipped best-effort.
  Rng orng = net->fork_rng("rep-owner-2");
  chain::Wallet owner(orng);
  net->fund(owner.address(), 10'000'000);
  const chain::Receipt dep = net->submit_and_confirm(owner.make_transaction(
      chain::Address(), 0, 200'000, ReputationRegistryContract::kContractType, {}));
  const chain::Address registry = dep.created_contract;

  const auth::ClassicUserKey req_key = auth::ClassicUserKey::generate(*rng, 1024);
  const auto req_cert = classic_ra->certify("rep-requester-2", req_key.key.pub);
  ClassicRequesterClient requester(*net, *params, req_key, req_cert,
                                   classic_ra->master_public_key(), net->fork_rng("rreq2"));
  TaskSpec spec{.budget = 2'000'000, .num_answers = 2, .policy_name = "majority-vote:4"};
  spec.reputation_registry = registry;  // never authorized
  const chain::Address task = requester.publish(spec);

  const auth::ClassicUserKey k0 = auth::ClassicUserKey::generate(*rng, 1024);
  const auto c0 = classic_ra->certify("rep2-w0", k0.key.pub);
  ClassicWorkerClient w0(*net, k0, c0, net->fork_rng("r2w0"));
  ASSERT_TRUE(confirm(w0.submit_answer(task, Fr::from_u64(1))).success);
  const auth::ClassicUserKey k1 = auth::ClassicUserKey::generate(*rng, 1024);
  const auto c1 = classic_ra->certify("rep2-w1", k1.key.pub);
  ClassicWorkerClient w1(*net, k1, c1, net->fork_rng("r2w1"));
  ASSERT_TRUE(confirm(w1.submit_answer(task, Fr::from_u64(1))).success);

  const auto rewards = requester.instruct_rewards();  // must not throw
  EXPECT_EQ(rewards, (std::vector<std::uint64_t>{1'000'000, 1'000'000}));
  const auto* reg =
      net->client_node().chain().state().contract_as<ReputationRegistryContract>(registry);
  EXPECT_EQ(reg->score(keccak256(k0.key.pub.to_bytes())), 0) << "report skipped";
}

}  // namespace
}  // namespace zl::zebralancer
