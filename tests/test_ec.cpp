// Elliptic curve and pairing tests: group laws on G1/G2/secp256k1/Jubjub,
// bilinearity and non-degeneracy of the ate pairing, Pippenger multiexp
// against the naive sum.
#include <gtest/gtest.h>

#include "common/kernel_engine.h"
#include "ec/babyjubjub.h"
#include "ec/glv.h"
#include "ec/multiexp.h"
#include "ec/pairing.h"
#include "ec/secp256k1.h"
#include "ec/serialize.h"

namespace zl {
namespace {

template <typename Point>
void check_group_laws(std::uint64_t seed) {
  Rng rng(seed);
  const Point g = Point::generator();
  ASSERT_TRUE(g.is_on_curve());
  EXPECT_TRUE(g.in_prime_subgroup());

  const BigInt a = 3 + random_below(rng, BigInt(1) << 120);
  const BigInt b = 3 + random_below(rng, BigInt(1) << 120);
  const Point pa = g * a, pb = g * b;
  EXPECT_TRUE(pa.is_on_curve());
  EXPECT_EQ(pa + pb, g * (a + b));
  EXPECT_EQ(pa - pa, Point::infinity());
  EXPECT_EQ(pa + Point::infinity(), pa);
  EXPECT_EQ(pa.dbl(), pa + pa);
  EXPECT_EQ((pa + pb) + pa, pa + (pb + pa));
  EXPECT_EQ(g * Point::order(), Point::infinity());
  EXPECT_EQ(g * (Point::order() + 5), g * 5);
}

TEST(G1, GroupLaws) { check_group_laws<G1>(21); }
TEST(G2, GroupLaws) { check_group_laws<G2>(22); }
TEST(Secp256k1, GroupLaws) { check_group_laws<SecpPoint>(23); }

template <typename Point>
struct PointOrderHelper {};

TEST(G1, AffineRoundTrip) {
  const G1 p = G1::generator() * 12345;
  const auto [x, y] = p.to_affine();
  EXPECT_EQ(G1::from_affine(x, y), p);
  EXPECT_THROW(G1::from_affine(x, y + Fq::one()), std::invalid_argument);
  EXPECT_THROW(G1::infinity().to_affine(), std::domain_error);
}

TEST(G1, ScalarEdgeCases) {
  const G1 g = G1::generator();
  EXPECT_EQ(g * 0, G1::infinity());
  EXPECT_EQ(g * 1, g);
  EXPECT_EQ(g * (-3), -(g * 3));
  EXPECT_EQ(G1::infinity() * 7, G1::infinity());
}

TEST(Pairing, Bilinearity) {
  Rng rng(31);
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  const BigInt a = 2 + random_below(rng, BigInt(1) << 100);
  const BigInt b = 2 + random_below(rng, BigInt(1) << 100);

  const Fq12 e = pairing(q, p);
  EXPECT_FALSE(e.is_one()) << "pairing must be non-degenerate";
  EXPECT_EQ(pairing(q, p * a), e.pow(a));
  EXPECT_EQ(pairing(q * b, p), e.pow(b));
  EXPECT_EQ(pairing(q * b, p * a), e.pow(a * b));
}

TEST(Pairing, ValuesLieInMuR) {
  const Fq12 e = pairing(G2::generator(), G1::generator());
  EXPECT_TRUE(e.pow(Fr::modulus_bigint()).is_one());
}

TEST(Pairing, AdditivityInEachSlot) {
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  const G1 p2 = p * 7, p3 = p * 11;
  EXPECT_EQ(pairing(q, p2 + p3), pairing(q, p2) * pairing(q, p3));
  const G2 q2 = q * 5, q3 = q * 13;
  EXPECT_EQ(pairing(q2 + q3, p), pairing(q2, p) * pairing(q3, p));
}

TEST(Pairing, InfinityConvention) {
  EXPECT_TRUE(pairing(G2::infinity(), G1::generator()).is_one());
  EXPECT_TRUE(pairing(G2::generator(), G1::infinity()).is_one());
}

TEST(Pairing, ProductSharesFinalExponentiation) {
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  // e(q, 3p) * e(-q, 3p) == 1, and a Groth16-shaped 2-term identity.
  EXPECT_TRUE(pairing_product({{q, p * 3}, {-q, p * 3}}).is_one());
  EXPECT_EQ(pairing_product({{q * 2, p * 3}, {q * 5, p * 7}}),
            pairing(q, p).pow(BigInt(2 * 3 + 5 * 7)));
}

TEST(Multiexp, MatchesNaive) {
  Rng rng(41);
  for (const std::size_t n : {0u, 1u, 5u, 8u, 33u, 100u}) {
    std::vector<G1> points;
    std::vector<Fr> scalars;
    G1 expected = G1::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const G1 p = G1::generator() * (1 + rng.uniform(1000));
      const Fr s = Fr::random(rng);
      points.push_back(p);
      scalars.push_back(s);
      expected += p * s.to_bigint();
    }
    EXPECT_EQ(multiexp(points, scalars), expected) << "n=" << n;
  }
}

TEST(Multiexp, HandlesZeroAndLargeScalars) {
  std::vector<G1> points = {G1::generator(), G1::generator() * 2, G1::generator() * 3,
                            G1::generator() * 4, G1::generator() * 5, G1::generator() * 6,
                            G1::generator() * 7, G1::generator() * 8, G1::generator() * 9};
  std::vector<Fr> scalars(9, Fr::zero());
  scalars[3] = Fr::from_bigint(Fr::modulus_bigint() - 1);  // max canonical scalar
  const G1 expected = points[3] * (Fr::modulus_bigint() - 1);
  EXPECT_EQ(multiexp(points, scalars), expected);
  EXPECT_THROW(multiexp(points, std::vector<Fr>(3)), std::invalid_argument);
}

template <typename Point>
void check_glv_endomorphism() {
  const Point g = Point::generator();
  const BigInt& lam = detail::glv_curve<Point>().lambda;
  EXPECT_EQ(glv_endomorphism(g), g * lam);
  const Point p = g * 123456789;
  EXPECT_EQ(glv_endomorphism(p), p * lam);
  EXPECT_TRUE(glv_endomorphism(Point::infinity()).is_infinity());
}

TEST(Glv, EndomorphismMatchesLambdaOnG1) { check_glv_endomorphism<G1>(); }
TEST(Glv, EndomorphismMatchesLambdaOnG2) { check_glv_endomorphism<G2>(); }

TEST(Glv, LambdaIsPrimitiveCubeRootModR) {
  const BigInt& r = Fr::modulus_bigint();
  const BigInt& lam = glv_lambda();
  BigInt rel = (lam * lam + lam + 1) % r;
  if (rel < 0) rel += r;
  EXPECT_EQ(rel, 0);
  EXPECT_NE(lam, 1);
  // beta likewise in Fq.
  const Fq beta = glv_beta();
  EXPECT_EQ(beta * beta * beta, Fq::one());
  EXPECT_NE(beta, Fq::one());
}

TEST(Glv, DecompositionRecombinesAndIsShort) {
  const BigInt& r = Fr::modulus_bigint();
  const BigInt& lam = glv_lambda();
  const BigInt bound = BigInt(1) << 130;  // half-scalars stay ~sqrt(r)
  Rng rng(91);
  std::vector<BigInt> ks;
  for (int i = 0; i < 40; ++i) ks.push_back(Fr::random(rng).to_bigint());
  for (const BigInt& edge :
       {BigInt(0), BigInt(1), BigInt(r - 1), lam, BigInt(r - lam)}) {
    ks.push_back(edge);
  }
  for (const BigInt& k : ks) {
    const GlvDecomposition d = glv_decompose<G1>(k);
    BigInt back = (d.k1 + d.k2 * lam - k) % r;
    if (back < 0) back += r;
    EXPECT_EQ(back, 0) << "k = " << k;
    EXPECT_LT(abs(d.k1), bound);
    EXPECT_LT(abs(d.k2), bound);
  }
}

template <typename Point>
void check_glv_mul(std::uint64_t seed) {
  Rng rng(seed);
  const Point g = Point::generator();
  std::vector<BigInt> ks = {BigInt(0),
                            BigInt(1),
                            BigInt(2),
                            BigInt(Point::order() - 1),
                            Point::order(),
                            BigInt(Point::order() + 5),
                            glv_lambda()};
  for (int i = 0; i < 10; ++i) ks.push_back(Fr::random(rng).to_bigint());
  for (const BigInt& k : ks) {
    const Point p = g * (1 + rng.uniform(1 << 20));
    EXPECT_EQ(glv_mul(p, k), p * k) << "k = " << k;
  }
  EXPECT_TRUE(glv_mul(Point::infinity(), BigInt(42)).is_infinity());
}

TEST(Glv, MulMatchesLadderOnG1) { check_glv_mul<G1>(61); }
TEST(Glv, MulMatchesLadderOnG2) { check_glv_mul<G2>(62); }

template <typename Point>
void check_kernel_vs_textbook(std::uint64_t seed) {
  // Adversarial input mix: infinities, zero / one / -1 scalars, duplicated
  // points (forced bucket doublings), and random full-width scalars. The
  // kernel engine must match the textbook oracle point-for-point — and since
  // serialization normalizes to affine, byte-for-byte.
  Rng rng(seed);
  for (const std::size_t n : {8u, 33u, 300u}) {
    std::vector<Point> points;
    std::vector<Fr> scalars;
    for (std::size_t i = 0; i < n; ++i) {
      Point p = Point::generator() * (1 + rng.uniform(1000));
      if (i % 7 == 3) p = Point::infinity();
      if (i % 5 == 4 && i > 0) p = points[i - 1];  // duplicates
      Fr s = Fr::random(rng);
      if (i % 11 == 0) s = Fr::zero();
      if (i % 11 == 1) s = Fr::one();
      if (i % 11 == 2) s = -Fr::one();
      points.push_back(p);
      scalars.push_back(s);
    }
    const Point oracle = multiexp_textbook(points, scalars);
    const Point kernel = multiexp(points, scalars);
    EXPECT_EQ(kernel, oracle) << "n=" << n;
    {
      ScopedKernelEngine off(false);  // toggled off, multiexp IS the oracle
      EXPECT_EQ(multiexp(points, scalars), oracle) << "n=" << n;
    }
  }
}

TEST(Multiexp, KernelMatchesTextbookOnG1) { check_kernel_vs_textbook<G1>(63); }
TEST(Multiexp, KernelMatchesTextbookOnG2) { check_kernel_vs_textbook<G2>(64); }

TEST(Multiexp, KernelAndTextbookBytesIdentical) {
  Rng rng(65);
  std::vector<G1> points;
  std::vector<Fr> scalars;
  for (std::size_t i = 0; i < 64; ++i) {
    points.push_back(G1::generator() * (1 + rng.uniform(1 << 16)));
    scalars.push_back(Fr::random(rng));
  }
  const Bytes kernel = g1_to_bytes(multiexp(points, scalars));
  const Bytes oracle = g1_to_bytes(multiexp_textbook(points, scalars));
  EXPECT_EQ(kernel, oracle);
}

TEST(G1, ToAffineCheckedIsTotal) {
  const G1::Affine inf = G1::infinity().to_affine_checked();
  EXPECT_TRUE(inf.infinity);
  const G1 p = G1::generator() * 7;
  const G1::Affine a = p.to_affine_checked();
  EXPECT_FALSE(a.infinity);
  EXPECT_EQ(G1::from_affine_point(a), p);
  EXPECT_EQ(G1::from_affine_point(a.negated()), -p);
  EXPECT_TRUE(G1::from_affine_point(inf).is_infinity());
}

TEST(G1, BatchNormalizeMatchesPerPoint) {
  Rng rng(66);
  std::vector<G1> points;
  for (std::size_t i = 0; i < 40; ++i) {
    if (i % 9 == 5) {
      points.push_back(G1::infinity());
    } else {
      // Arbitrary Jacobian representatives (sums have z != 1).
      points.push_back(G1::generator() * (1 + rng.uniform(1000)) + G1::generator());
    }
  }
  const std::vector<G1::Affine> affs = G1::normalize(points);
  ASSERT_EQ(affs.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const G1::Affine ref = points[i].to_affine_checked();
    EXPECT_EQ(affs[i].infinity, ref.infinity) << "i=" << i;
    if (!ref.infinity) {
      EXPECT_EQ(affs[i].x, ref.x) << "i=" << i;
      EXPECT_EQ(affs[i].y, ref.y) << "i=" << i;
    }
  }
}

TEST(G1, AddMixedMatchesGenericAdd) {
  Rng rng(67);
  for (int i = 0; i < 20; ++i) {
    const G1 p = G1::generator() * (1 + rng.uniform(1000));
    const G1 q = G1::generator() * (1 + rng.uniform(1000));
    EXPECT_EQ(p.add_mixed(q.to_affine_checked()), p + q);
    EXPECT_EQ(p.add_mixed(p.to_affine_checked()), p.dbl());        // doubling branch
    EXPECT_EQ(p.add_mixed((-p).to_affine_checked()), G1::infinity());  // cancellation
    EXPECT_EQ(p.add_mixed(G1::Affine{}), p);                       // q at infinity
    EXPECT_EQ(G1::infinity().add_mixed(q.to_affine_checked()), q);  // this at infinity
  }
}

TEST(Jubjub, GeneratorAndSubgroup) {
  const JubjubPoint g = JubjubPoint::generator();
  EXPECT_TRUE(g.is_on_curve());
  EXPECT_EQ(g * JubjubPoint::subgroup_order(), JubjubPoint::identity());
  EXPECT_NE(g * 2, JubjubPoint::identity());
}

TEST(Jubjub, GroupLaws) {
  Rng rng(51);
  const JubjubPoint g = JubjubPoint::generator();
  const BigInt a = 2 + random_below(rng, BigInt(1) << 100);
  const BigInt b = 2 + random_below(rng, BigInt(1) << 100);
  EXPECT_EQ((g * a) + (g * b), g * (a + b));
  EXPECT_EQ(g + JubjubPoint::identity(), g);
  EXPECT_EQ((g * a) - (g * a), JubjubPoint::identity());
  EXPECT_TRUE((g * a).is_on_curve());
}

TEST(Jubjub, DiffieHellmanAgreement) {
  // The key-agreement pattern the task encryption uses (DESIGN.md T2).
  Rng rng(52);
  const JubjubPoint g = JubjubPoint::generator();
  const BigInt esk = 2 + random_below(rng, JubjubPoint::subgroup_order());
  const BigInt r = 2 + random_below(rng, JubjubPoint::subgroup_order());
  const JubjubPoint epk = g * esk;
  const JubjubPoint R = g * r;
  EXPECT_EQ(epk * r, R * esk);
}

TEST(Jubjub, SerializationRoundTrip) {
  const JubjubPoint p = JubjubPoint::generator() * 97;
  EXPECT_EQ(JubjubPoint::from_bytes(p.to_bytes()), p);
  Bytes bad = p.to_bytes();
  bad[5] ^= 1;
  EXPECT_THROW(JubjubPoint::from_bytes(bad), std::invalid_argument);
}

}  // namespace
}  // namespace zl
