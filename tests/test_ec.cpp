// Elliptic curve and pairing tests: group laws on G1/G2/secp256k1/Jubjub,
// bilinearity and non-degeneracy of the ate pairing, Pippenger multiexp
// against the naive sum.
#include <gtest/gtest.h>

#include "ec/babyjubjub.h"
#include "ec/multiexp.h"
#include "ec/pairing.h"
#include "ec/secp256k1.h"

namespace zl {
namespace {

template <typename Point>
void check_group_laws(std::uint64_t seed) {
  Rng rng(seed);
  const Point g = Point::generator();
  ASSERT_TRUE(g.is_on_curve());
  EXPECT_TRUE(g.in_prime_subgroup());

  const BigInt a = 3 + random_below(rng, BigInt(1) << 120);
  const BigInt b = 3 + random_below(rng, BigInt(1) << 120);
  const Point pa = g * a, pb = g * b;
  EXPECT_TRUE(pa.is_on_curve());
  EXPECT_EQ(pa + pb, g * (a + b));
  EXPECT_EQ(pa - pa, Point::infinity());
  EXPECT_EQ(pa + Point::infinity(), pa);
  EXPECT_EQ(pa.dbl(), pa + pa);
  EXPECT_EQ((pa + pb) + pa, pa + (pb + pa));
  EXPECT_EQ(g * Point::order(), Point::infinity());
  EXPECT_EQ(g * (Point::order() + 5), g * 5);
}

TEST(G1, GroupLaws) { check_group_laws<G1>(21); }
TEST(G2, GroupLaws) { check_group_laws<G2>(22); }
TEST(Secp256k1, GroupLaws) { check_group_laws<SecpPoint>(23); }

template <typename Point>
struct PointOrderHelper {};

TEST(G1, AffineRoundTrip) {
  const G1 p = G1::generator() * 12345;
  const auto [x, y] = p.to_affine();
  EXPECT_EQ(G1::from_affine(x, y), p);
  EXPECT_THROW(G1::from_affine(x, y + Fq::one()), std::invalid_argument);
  EXPECT_THROW(G1::infinity().to_affine(), std::domain_error);
}

TEST(G1, ScalarEdgeCases) {
  const G1 g = G1::generator();
  EXPECT_EQ(g * 0, G1::infinity());
  EXPECT_EQ(g * 1, g);
  EXPECT_EQ(g * (-3), -(g * 3));
  EXPECT_EQ(G1::infinity() * 7, G1::infinity());
}

TEST(Pairing, Bilinearity) {
  Rng rng(31);
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  const BigInt a = 2 + random_below(rng, BigInt(1) << 100);
  const BigInt b = 2 + random_below(rng, BigInt(1) << 100);

  const Fq12 e = pairing(q, p);
  EXPECT_FALSE(e.is_one()) << "pairing must be non-degenerate";
  EXPECT_EQ(pairing(q, p * a), e.pow(a));
  EXPECT_EQ(pairing(q * b, p), e.pow(b));
  EXPECT_EQ(pairing(q * b, p * a), e.pow(a * b));
}

TEST(Pairing, ValuesLieInMuR) {
  const Fq12 e = pairing(G2::generator(), G1::generator());
  EXPECT_TRUE(e.pow(Fr::modulus_bigint()).is_one());
}

TEST(Pairing, AdditivityInEachSlot) {
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  const G1 p2 = p * 7, p3 = p * 11;
  EXPECT_EQ(pairing(q, p2 + p3), pairing(q, p2) * pairing(q, p3));
  const G2 q2 = q * 5, q3 = q * 13;
  EXPECT_EQ(pairing(q2 + q3, p), pairing(q2, p) * pairing(q3, p));
}

TEST(Pairing, InfinityConvention) {
  EXPECT_TRUE(pairing(G2::infinity(), G1::generator()).is_one());
  EXPECT_TRUE(pairing(G2::generator(), G1::infinity()).is_one());
}

TEST(Pairing, ProductSharesFinalExponentiation) {
  const G1 p = G1::generator();
  const G2 q = G2::generator();
  // e(q, 3p) * e(-q, 3p) == 1, and a Groth16-shaped 2-term identity.
  EXPECT_TRUE(pairing_product({{q, p * 3}, {-q, p * 3}}).is_one());
  EXPECT_EQ(pairing_product({{q * 2, p * 3}, {q * 5, p * 7}}),
            pairing(q, p).pow(BigInt(2 * 3 + 5 * 7)));
}

TEST(Multiexp, MatchesNaive) {
  Rng rng(41);
  for (const std::size_t n : {0u, 1u, 5u, 8u, 33u, 100u}) {
    std::vector<G1> points;
    std::vector<Fr> scalars;
    G1 expected = G1::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const G1 p = G1::generator() * (1 + rng.uniform(1000));
      const Fr s = Fr::random(rng);
      points.push_back(p);
      scalars.push_back(s);
      expected += p * s.to_bigint();
    }
    EXPECT_EQ(multiexp(points, scalars), expected) << "n=" << n;
  }
}

TEST(Multiexp, HandlesZeroAndLargeScalars) {
  std::vector<G1> points = {G1::generator(), G1::generator() * 2, G1::generator() * 3,
                            G1::generator() * 4, G1::generator() * 5, G1::generator() * 6,
                            G1::generator() * 7, G1::generator() * 8, G1::generator() * 9};
  std::vector<Fr> scalars(9, Fr::zero());
  scalars[3] = Fr::from_bigint(Fr::modulus_bigint() - 1);  // max canonical scalar
  const G1 expected = points[3] * (Fr::modulus_bigint() - 1);
  EXPECT_EQ(multiexp(points, scalars), expected);
  EXPECT_THROW(multiexp(points, std::vector<Fr>(3)), std::invalid_argument);
}

TEST(Jubjub, GeneratorAndSubgroup) {
  const JubjubPoint g = JubjubPoint::generator();
  EXPECT_TRUE(g.is_on_curve());
  EXPECT_EQ(g * JubjubPoint::subgroup_order(), JubjubPoint::identity());
  EXPECT_NE(g * 2, JubjubPoint::identity());
}

TEST(Jubjub, GroupLaws) {
  Rng rng(51);
  const JubjubPoint g = JubjubPoint::generator();
  const BigInt a = 2 + random_below(rng, BigInt(1) << 100);
  const BigInt b = 2 + random_below(rng, BigInt(1) << 100);
  EXPECT_EQ((g * a) + (g * b), g * (a + b));
  EXPECT_EQ(g + JubjubPoint::identity(), g);
  EXPECT_EQ((g * a) - (g * a), JubjubPoint::identity());
  EXPECT_TRUE((g * a).is_on_curve());
}

TEST(Jubjub, DiffieHellmanAgreement) {
  // The key-agreement pattern the task encryption uses (DESIGN.md T2).
  Rng rng(52);
  const JubjubPoint g = JubjubPoint::generator();
  const BigInt esk = 2 + random_below(rng, JubjubPoint::subgroup_order());
  const BigInt r = 2 + random_below(rng, JubjubPoint::subgroup_order());
  const JubjubPoint epk = g * esk;
  const JubjubPoint R = g * r;
  EXPECT_EQ(epk * r, R * esk);
}

TEST(Jubjub, SerializationRoundTrip) {
  const JubjubPoint p = JubjubPoint::generator() * 97;
  EXPECT_EQ(JubjubPoint::from_bytes(p.to_bytes()), p);
  Bytes bad = p.to_bytes();
  bad[5] ^= 1;
  EXPECT_THROW(JubjubPoint::from_bytes(bad), std::invalid_argument);
}

}  // namespace
}  // namespace zl
