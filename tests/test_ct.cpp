// Constant-time discipline tests (DESIGN.md §8).
//
// Three layers of coverage:
//   1. The taint harness itself: poison/unpoison range algebra, propagation,
//      violation handling, and the negative control — planted secret-dependent
//      branches MUST be caught (EXPECT_DEATH on the default abort handler).
//   2. Zeroization: secure_zero really wipes byte buffers and GMP limbs.
//   3. The instrumented production paths run clean: ECDSA sign, RSA private
//      ops, CPL-AA authentication, and task-answer decryption complete with
//      zero violations under an active harness even though their keys are
//      poisoned — the blinding/declassification mediations are doing their
//      job.
//
// The extra CtCheckBuild suite compiles only under the ZL_CT_CHECK option
// (cmake --preset ctcheck) and exercises the hot-path Fp hooks: taint follows
// field arithmetic, and a poisoned operand reaching operator== aborts.
#include <gtest/gtest.h>

#include <cstring>

#include "auth/cpl_auth.h"
#include "common/ct.h"
#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/ecdsa.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "ec/glv.h"
#include "zebralancer/encryption.h"

namespace zl {
namespace {

// The violation handler is a plain function pointer; tests record the last
// reported site so a regression names the offending guard in the failure.
const char* g_last_site = nullptr;
void record_site(const char* site) { g_last_site = site; }

// ---------------------------------------------------------------------------
// secure_zero / ct_equal
// ---------------------------------------------------------------------------

TEST(SecureZero, WipesRawBufferAndBytes) {
  unsigned char buf[32];
  std::memset(buf, 0xAB, sizeof(buf));
  secure_zero(buf, sizeof(buf));
  for (unsigned char c : buf) EXPECT_EQ(c, 0);

  Bytes b{1, 2, 3, 4, 5};
  secure_zero(b);
  for (std::uint8_t c : b) EXPECT_EQ(c, 0);
  EXPECT_EQ(b.size(), 5u);  // wiped in place, not resized
}

TEST(SecureZero, WipesBigIntToZero) {
  BigInt v = bigint_from_decimal("123456789012345678901234567890123456789");
  secure_zero(v);
  EXPECT_EQ(v, 0);
}

TEST(CtEqual, AgreesWithEqualityOnDigests) {
  const Bytes a = Sha256::hash(Bytes{1, 2, 3});
  Bytes b = a;
  EXPECT_TRUE(ct_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, Bytes{}));  // length mismatch rejected up front
}

// ---------------------------------------------------------------------------
// Taint-set algebra
// ---------------------------------------------------------------------------

TEST(Taint, PoisonDeclassifyRoundTrip) {
  ct::ScopedHarness h;
  unsigned char secret[16] = {};
  EXPECT_FALSE(ct::tainted(secret, sizeof(secret)));
  ct::poison(secret, sizeof(secret));
  EXPECT_TRUE(ct::tainted(secret, sizeof(secret)));
  EXPECT_TRUE(ct::tainted(secret + 7, 1));  // any overlapping byte
  ct::declassify(secret, sizeof(secret));
  EXPECT_FALSE(ct::tainted(secret, sizeof(secret)));
}

TEST(Taint, UnpoisonSplitsCoveringRange) {
  ct::ScopedHarness h;
  unsigned char buf[32] = {};
  ct::poison(buf, sizeof(buf));
  ct::unpoison(buf + 8, 8);  // carve a hole in the middle
  EXPECT_TRUE(ct::tainted(buf, 8));
  EXPECT_FALSE(ct::tainted(buf + 8, 8));
  EXPECT_TRUE(ct::tainted(buf + 16, 16));
}

TEST(Taint, PropagateFollowsInputsAndScrubsCleanOutputs) {
  ct::ScopedHarness h;
  unsigned char a[8] = {}, b[8] = {}, out[8] = {};
  ct::poison(a, sizeof(a));
  ct::propagate(out, sizeof(out), a, sizeof(a), b, sizeof(b));
  EXPECT_TRUE(ct::tainted(out, sizeof(out)));
  // Recompute from two clean inputs: the stale taint on `out` must lift,
  // otherwise recycled stack slots accumulate false positives.
  ct::declassify(a, sizeof(a));
  ct::propagate(out, sizeof(out), a, sizeof(a), b, sizeof(b));
  EXPECT_FALSE(ct::tainted(out, sizeof(out)));
}

TEST(Taint, InertOutsideHarnessScope) {
  unsigned char secret[8] = {};
  ct::poison(secret, sizeof(secret));  // no-op: no scope active
  EXPECT_FALSE(ct::tainted(secret, sizeof(secret)));
  ct::branch(secret, sizeof(secret), "test-site");  // must not abort
  EXPECT_EQ(ct::violation_count(), 0u);
}

TEST(Taint, CtCheckedPoisonsStorageForLifetime) {
  ct::ScopedHarness h;
  ct::CtChecked<std::uint64_t> key(0xDEADBEEFu);
  EXPECT_TRUE(ct::tainted_object(key.secret()));
  const std::uint64_t pub = key.reveal();
  EXPECT_FALSE(ct::tainted_object(pub));
  EXPECT_TRUE(ct::tainted_object(key.secret()));  // original stays poisoned
}

// ---------------------------------------------------------------------------
// Negative controls: planted secret-dependent operations are caught
// ---------------------------------------------------------------------------

TEST(Violations, CountingHandlerRecordsPlantedBranch) {
  ct::ScopedHarness h;
  ct::set_violation_handler(record_site);
  g_last_site = nullptr;
  const BigInt secret(0xC0FFEEu);
  ct::poison(secret);
  (void)mod_inverse(secret, BigInt(101));  // variable-time on a secret: caught
  EXPECT_EQ(ct::violation_count(), 1u);
  ASSERT_NE(g_last_site, nullptr);
  EXPECT_NE(std::strstr(g_last_site, "mod_inverse"), nullptr);
}

using CtDeathTest = ::testing::Test;

TEST(CtDeathTest, ModInverseOnSecretAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        const BigInt secret(0xC0FFEEu);
        ct::poison(secret);
        (void)mod_inverse(secret, BigInt(101));
      },
      "mod_inverse");
}

TEST(CtDeathTest, ModPowOnSecretBaseAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        const BigInt secret(0xC0FFEEu);
        ct::poison(secret);
        (void)mod_pow(secret, BigInt(3), BigInt(1009));
      },
      "mod_pow");
}

TEST(CtDeathTest, NakedScalarMultOnSecretAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        const BigInt k = bigint_from_decimal("1311768467294899695");
        ct::poison(k);
        (void)(SecpPoint::generator() * k);
      },
      "variable-time in the scalar");
}

TEST(CtDeathTest, GlvDecomposeOnSecretAborts) {
  // GLV is public-scalar-only: the Babai decomposition and joint ladder are
  // variable-time in the scalar, so a tainted input must trip the guard
  // before any decomposition work happens.
  EXPECT_DEATH(
      {
        ct::enable();
        const BigInt k = bigint_from_decimal("1311768467294899695");
        ct::poison(k);
        (void)glv_decompose<G1>(k);
      },
      "variable-time");
}

TEST(CtDeathTest, GlvMulOnSecretScalarAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        const BigInt k = bigint_from_decimal("987654321987654321");
        ct::poison(k);
        (void)glv_mul(G1::generator(), k);
      },
      "variable-time");
}

// ---------------------------------------------------------------------------
// Production paths run clean under an active harness
// ---------------------------------------------------------------------------

TEST(CtClean, EcdsaGenerateSignVerify) {
  Rng rng(31001);
  const Bytes msg{'z', 'e', 'b', 'r', 'a'};
  EcdsaSignature sig;
  Bytes pub;
  {
    ct::ScopedHarness h;
    ct::set_violation_handler(record_site);
    const EcdsaKeyPair key = EcdsaKeyPair::generate(rng);
    sig = key.sign(msg, rng);
    pub = key.public_key_bytes();
    EXPECT_EQ(ct::violation_count(), 0u)
        << "ECDSA touched a guard at: " << (g_last_site ? g_last_site : "?");
  }
  EXPECT_TRUE(ecdsa_verify(pub, msg, sig));
}

TEST(CtClean, RsaPrivateOpsWithPoisonedExponent) {
  Rng rng(31002);
  // 1024-bit keeps keygen fast; the blinding path is identical at 2048.
  const RsaKeyPair key = RsaKeyPair::generate(rng, 1024);
  const Bytes msg{'p', 'r', 'i', 'v', 'a', 't', 'e'};
  const Bytes ctext = rsa_oaep_encrypt(key.pub, msg, rng);
  Bytes decrypted, sig;
  {
    ct::ScopedHarness h;
    ct::set_violation_handler(record_site);
    ct::poison(key.d);  // the long-term secret is tainted for both ops
    decrypted = rsa_oaep_decrypt(key, ctext);
    sig = rsa_sign(key, msg);
    EXPECT_EQ(ct::violation_count(), 0u)
        << "RSA touched a guard at: " << (g_last_site ? g_last_site : "?");
  }
  EXPECT_EQ(decrypted, msg);
  EXPECT_TRUE(rsa_verify(key.pub, msg, sig));
}

// Under ZL_CT_CHECK the SNARK prover is a *documented* harness gap (DESIGN.md
// §8): witness generation genuinely branches on sk-derived wire values (e.g.
// the is-zero gadget's conditional inverse), so running authenticate inside a
// harness would report those — correctly, but they are accepted and out of
// scope for the source-level discipline this suite enforces. The default
// build's guards (scalar-mult entry, mod_pow/mod_inverse) still cover it.
#if !defined(ZL_CT_CHECK)
TEST(CtClean, CplAuthAuthenticate) {
  Rng rng(31003);
  const auto params = auth::auth_setup(/*merkle_depth=*/4, rng);
  auth::RegistrationAuthority ra(4);
  const Bytes prefix{'t', 'a', 's', 'k'};
  const Bytes rest{'a', 'n', 's', 'w', 'e', 'r'};
  auth::Attestation att;
  Fr root;
  {
    ct::ScopedHarness h;
    ct::set_violation_handler(record_site);
    const auth::UserKey key = auth::UserKey::generate(rng);
    const auth::Certificate cert = ra.register_identity("worker", key.pk);
    root = ra.registry_root();
    att = auth::authenticate(params, prefix, rest, key, cert, root, rng);
    EXPECT_EQ(ct::violation_count(), 0u)
        << "CPL-AA touched a guard at: " << (g_last_site ? g_last_site : "?");
  }
  EXPECT_TRUE(auth::verify(params, prefix, rest, root, att));
}
#endif  // !ZL_CT_CHECK

TEST(CtClean, TaskAnswerDecryption) {
  Rng rng(31004);
  const Fr answer = Fr::from_u64(77);
  Fr decrypted;
  {
    ct::ScopedHarness h;
    ct::set_violation_handler(record_site);
    const auto key = zebralancer::TaskEncKeyPair::generate(rng);
    const auto ctext = zebralancer::encrypt_answer(key.epk, answer, rng);
    decrypted = zebralancer::decrypt_answer(key.esk, ctext);
    EXPECT_EQ(ct::violation_count(), 0u)
        << "decryption touched a guard at: " << (g_last_site ? g_last_site : "?");
  }
  EXPECT_EQ(decrypted, answer);
}

TEST(CtClean, BlindedInverseMatchesPlainInverse) {
  Rng rng(31005);
  const BigInt m = bigint_from_decimal("115792089237316195423570985008687907852837564279074904382605163141518161494337");
  for (int i = 0; i < 8; ++i) {
    const BigInt v = random_below(rng, m);
    if (v == 0) continue;
    const BigInt expected = mod_inverse(v, m);
    ct::ScopedHarness h;
    ct::poison(v);
    EXPECT_EQ(mod_inverse_blinded(v, m, rng), expected);
    EXPECT_EQ(ct::violation_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Hot-path hooks (compiled only under the ZL_CT_CHECK build option)
// ---------------------------------------------------------------------------
#if defined(ZL_CT_CHECK)

TEST(CtCheckBuild, TaintFollowsFieldArithmetic) {
  ct::ScopedHarness h;
  Fr a = Fr::from_u64(5);
  const Fr b = Fr::from_u64(7);
  ct::poison_object(a);
  const Fr sum = a + b;
  EXPECT_TRUE(ct::tainted_object(sum)) << "taint must follow Fp::operator+";
  const Fr clean = b + b;
  EXPECT_FALSE(ct::tainted_object(clean));
  const Fr prod = sum * b;
  EXPECT_TRUE(ct::tainted_object(prod)) << "taint must follow mont_mul";
}

TEST(CtCheckBuild, TaintFollowsMontSqr) {
  // The dedicated squaring kernel has its own ZL_CT_PROP1 hook; a poisoned
  // operand must taint the square, and a clean operand must not.
  ct::ScopedHarness h;
  Fr a = Fr::from_u64(5);
  ct::poison_object(a);
  const Fr sq = a.squared();
  EXPECT_TRUE(ct::tainted_object(sq)) << "taint must follow mont_sqr";
  const Fr clean = Fr::from_u64(7).squared();
  EXPECT_FALSE(ct::tainted_object(clean));
}

TEST(CtCheckBuild, ZeroizeLiftsTaint) {
  ct::ScopedHarness h;
  Fr a = Fr::from_u64(5);
  ct::poison_object(a);
  a.zeroize();
  EXPECT_FALSE(ct::tainted_object(a));
  EXPECT_TRUE(a.is_zero());  // guard must not fire: taint was lifted
}

TEST(CtCheckBuildDeathTest, SecretFpEqualityAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        Fr a = Fr::from_u64(5);
        const Fr b = Fr::from_u64(5);
        ct::poison_object(a);
        (void)(a == b);
      },
      "Fp::operator==");
}

TEST(CtCheckBuildDeathTest, SecretIsZeroAborts) {
  EXPECT_DEATH(
      {
        ct::enable();
        Fr a = Fr::from_u64(5);
        ct::poison_object(a);
        (void)a.is_zero();
      },
      "Fp::is_zero");
}

#endif  // ZL_CT_CHECK

}  // namespace
}  // namespace zl
