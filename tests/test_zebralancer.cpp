// ZebraLancer protocol tests: unit tests for encryption and policies,
// circuit/native agreement for every policy, reward-proof soundness, and
// the full end-to-end protocol on the simulated test net including the
// attack scenarios from the paper's security analysis (§V-C).
#include <gtest/gtest.h>

#include "zebralancer/scenario.h"

namespace zl::zebralancer {
namespace {

TEST(Encryption, RoundTrip) {
  Rng rng(401);
  const TaskEncKeyPair key = TaskEncKeyPair::generate(rng);
  EXPECT_EQ(mpz_sizeinbase(key.esk.get_mpz_t(), 2), kEskBits);
  for (const std::uint64_t a : {0ull, 1ull, 3ull, 12345ull}) {
    const AnswerCiphertext ct = encrypt_answer(key.epk, Fr::from_u64(a), rng);
    EXPECT_EQ(decrypt_answer(key.esk, ct), Fr::from_u64(a));
  }
}

TEST(Encryption, IsRandomizedAndKeySeparated) {
  Rng rng(402);
  const TaskEncKeyPair k1 = TaskEncKeyPair::generate(rng);
  const TaskEncKeyPair k2 = TaskEncKeyPair::generate(rng);
  const Fr answer = Fr::from_u64(2);
  const AnswerCiphertext c1 = encrypt_answer(k1.epk, answer, rng);
  const AnswerCiphertext c2 = encrypt_answer(k1.epk, answer, rng);
  EXPECT_FALSE(c1 == c2) << "semantic security requires randomized encryption";
  // Decrypting with the wrong key yields garbage, not the answer.
  EXPECT_NE(decrypt_answer(k2.esk, c1), answer);
}

TEST(Encryption, PlaceholderDecryptsToSentinelUnderAnyKey) {
  Rng rng(403);
  const Fr sentinel = Fr::from_u64(4);
  const AnswerCiphertext ct = placeholder_ciphertext(sentinel);
  for (int i = 0; i < 3; ++i) {
    const TaskEncKeyPair key = TaskEncKeyPair::generate(rng);
    EXPECT_EQ(decrypt_answer(key.esk, ct), sentinel);
  }
}

TEST(Encryption, SerializationRoundTrip) {
  Rng rng(404);
  const TaskEncKeyPair key = TaskEncKeyPair::generate(rng);
  const AnswerCiphertext ct = encrypt_answer(key.epk, Fr::from_u64(3), rng);
  EXPECT_EQ(AnswerCiphertext::from_bytes(ct.to_bytes()), ct);
  EXPECT_THROW(AnswerCiphertext::from_bytes(Bytes(3)), std::invalid_argument);
}

std::vector<Fr> fr_answers(const std::vector<std::uint64_t>& vals) {
  std::vector<Fr> out;
  for (const auto v : vals) out.push_back(Fr::from_u64(v));
  return out;
}

TEST(Policy, MajorityVoteNative) {
  const MajorityVotePolicy policy(4);
  // 3 workers: majority is 1.
  EXPECT_EQ(policy.rewards(fr_answers({1, 1, 2}), 100),
            (std::vector<std::uint64_t>{100, 100, 0}));
  // Tie between 0 and 2 -> lowest index (0) wins.
  EXPECT_EQ(policy.rewards(fr_answers({0, 2, 0, 2}), 50),
            (std::vector<std::uint64_t>{50, 0, 50, 0}));
  // ⊥ (= 4) never rewarded, and never elected majority.
  EXPECT_EQ(policy.rewards(fr_answers({4, 4, 3}), 10), (std::vector<std::uint64_t>{0, 0, 10}));
  EXPECT_EQ(policy.name(), "majority-vote:4");
  EXPECT_THROW(MajorityVotePolicy(1), std::invalid_argument);
}

TEST(Policy, ThresholdAndUniformNative) {
  const ThresholdAgreementPolicy threshold(4, 2);
  EXPECT_EQ(threshold.rewards(fr_answers({1, 1, 2}), 100),
            (std::vector<std::uint64_t>{100, 100, 0}));
  EXPECT_EQ(threshold.rewards(fr_answers({0, 1, 2}), 100),
            (std::vector<std::uint64_t>{0, 0, 0}));
  const UniformPolicy uniform(4);
  EXPECT_EQ(uniform.rewards(fr_answers({0, 3, 4}), 7), (std::vector<std::uint64_t>{7, 7, 0}));
}

TEST(Policy, ByNameRegistry) {
  EXPECT_EQ(IncentivePolicy::by_name("majority-vote:5")->name(), "majority-vote:5");
  EXPECT_EQ(IncentivePolicy::by_name("threshold:4:2")->name(), "threshold:4:2");
  EXPECT_EQ(IncentivePolicy::by_name("uniform:3")->name(), "uniform:3");
  EXPECT_THROW(IncentivePolicy::by_name("bogus"), std::invalid_argument);
}

// Exhaustive gadget/native agreement for all three policies on every
// 3-answer combination over {0..k} (including ⊥).
TEST(Policy, GadgetAgreesWithNativeExhaustively) {
  Rng rng(405);
  const std::vector<std::unique_ptr<IncentivePolicy>> policies = [] {
    std::vector<std::unique_ptr<IncentivePolicy>> out;
    out.push_back(std::make_unique<MajorityVotePolicy>(3));
    out.push_back(std::make_unique<ThresholdAgreementPolicy>(3, 2));
    out.push_back(std::make_unique<UniformPolicy>(3));
    return out;
  }();
  for (const auto& policy : policies) {
    const unsigned k = policy->num_choices();
    for (unsigned a0 = 0; a0 <= k; ++a0) {
      for (unsigned a1 = 0; a1 <= k; ++a1) {
        for (unsigned a2 = 0; a2 <= k; ++a2) {
          const std::vector<Fr> answers = fr_answers({a0, a1, a2});
          const std::vector<std::uint64_t> native = policy->rewards(answers, 30);
          snark::CircuitBuilder b;
          std::vector<snark::Wire> wires;
          for (const Fr& a : answers) wires.push_back(b.witness(a));
          const auto gadget =
              policy->rewards_gadget(b, wires, snark::Wire::constant(Fr::from_u64(30)));
          ASSERT_TRUE(b.constraint_system().is_satisfied(b.assignment()))
              << policy->name() << " " << a0 << a1 << a2;
          for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_EQ(gadget[i].value, Fr::from_u64(native[i]))
                << policy->name() << " answers " << a0 << a1 << a2 << " worker " << i;
          }
        }
      }
    }
  }
}

class RewardProofTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;
  static void SetUpTestSuite() {
    rng = new Rng(406);
    spec = new RewardCircuitSpec{kN, "majority-vote:4"};
    keys = new snark::Keypair(reward_setup(*spec, *rng));
  }
  static void TearDownTestSuite() {
    delete keys;
    delete spec;
    delete rng;
  }
  static Rng* rng;
  static RewardCircuitSpec* spec;
  static snark::Keypair* keys;
};
Rng* RewardProofTest::rng = nullptr;
RewardCircuitSpec* RewardProofTest::spec = nullptr;
snark::Keypair* RewardProofTest::keys = nullptr;

TEST_F(RewardProofTest, HonestInstructionVerifies) {
  const TaskEncKeyPair enc = TaskEncKeyPair::generate(*rng);
  std::vector<AnswerCiphertext> cts;
  for (const std::uint64_t a : {2ull, 2ull, 0ull}) {
    cts.push_back(encrypt_answer(enc.epk, Fr::from_u64(a), *rng));
  }
  const RewardInstruction inst = prove_rewards(keys->pk, *spec, enc, 100, cts, *rng);
  EXPECT_EQ(inst.rewards, (std::vector<std::uint64_t>{100, 100, 0}));
  const auto statement = reward_statement(enc.epk, 100, cts, inst.rewards);
  EXPECT_TRUE(snark::verify(keys->vk, statement, inst.proof));
}

TEST_F(RewardProofTest, FalseInstructionRejected) {
  // The false-reporting attack: the requester claims nobody was correct.
  const TaskEncKeyPair enc = TaskEncKeyPair::generate(*rng);
  std::vector<AnswerCiphertext> cts;
  for (const std::uint64_t a : {1ull, 1ull, 1ull}) {
    cts.push_back(encrypt_answer(enc.epk, Fr::from_u64(a), *rng));
  }
  const RewardInstruction honest = prove_rewards(keys->pk, *spec, enc, 100, cts, *rng);
  const std::vector<std::uint64_t> cheat = {0, 0, 0};
  EXPECT_FALSE(
      snark::verify(keys->vk, reward_statement(enc.epk, 100, cts, cheat), honest.proof));
  // Nor can the honest proof be re-bound to a different budget share.
  EXPECT_FALSE(
      snark::verify(keys->vk, reward_statement(enc.epk, 999, cts, honest.rewards), honest.proof));
}

TEST_F(RewardProofTest, WrongKeyCannotProve) {
  const TaskEncKeyPair enc = TaskEncKeyPair::generate(*rng);
  std::vector<AnswerCiphertext> cts;
  for (int i = 0; i < 3; ++i) cts.push_back(encrypt_answer(enc.epk, Fr::from_u64(1), *rng));
  TaskEncKeyPair wrong = TaskEncKeyPair::generate(*rng);
  wrong.epk = enc.epk;  // claims the task's epk but holds a different esk
  EXPECT_THROW(prove_rewards(keys->pk, *spec, wrong, 100, cts, *rng), std::invalid_argument);
}

TEST_F(RewardProofTest, PaddedSlotsEarnNothing) {
  const TaskEncKeyPair enc = TaskEncKeyPair::generate(*rng);
  std::vector<AnswerCiphertext> cts = {encrypt_answer(enc.epk, Fr::from_u64(2), *rng),
                                       encrypt_answer(enc.epk, Fr::from_u64(2), *rng),
                                       placeholder_ciphertext(Fr::from_u64(4))};
  const RewardInstruction inst = prove_rewards(keys->pk, *spec, enc, 100, cts, *rng);
  EXPECT_EQ(inst.rewards, (std::vector<std::uint64_t>{100, 100, 0}));
  EXPECT_TRUE(snark::verify(keys->vk, reward_statement(enc.epk, 100, cts, inst.rewards),
                            inst.proof));
}

// ---------------------------------------------------------------------------
// End-to-end protocol on the simulated test net (the §VI deployment, scaled
// to n = 3 for test latency; the full 3/5/7/9/11 sweep is the e2e bench).
// ---------------------------------------------------------------------------

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng = new Rng(407);
    net = new TestNet({.merkle_depth = 6});
    params = new SystemParams(
        make_system_params(6, {RewardCircuitSpec{3, "majority-vote:4"}}, *rng));

    requester_key = new auth::UserKey(auth::UserKey::generate(*rng));
    auto requester_cert = net->register_participant("requester", requester_key->pk);
    for (int i = 0; i < 3; ++i) {
      worker_keys[i] = new auth::UserKey(auth::UserKey::generate(*rng));
      worker_certs[i] = new auth::Certificate(
          net->register_participant("worker-" + std::to_string(i), worker_keys[i]->pk));
    }
    // Paths grew as registrations happened: refresh everyone.
    requester_cert = net->ra().current_certificate(requester_cert.leaf_index);
    for (int i = 0; i < 3; ++i) {
      *worker_certs[i] = net->ra().current_certificate(worker_certs[i]->leaf_index);
    }
    requester = new RequesterClient(*net, *params, *requester_key, requester_cert,
                                    net->fork_rng("requester"));
    for (int i = 0; i < 3; ++i) {
      workers[i] = new WorkerClient(*net, *params, *worker_keys[i], *worker_certs[i],
                                    net->fork_rng("worker-" + std::to_string(i)));
    }
  }
  static void TearDownTestSuite() {
    for (auto*& w : workers) delete w;
    delete requester;
    for (auto*& k : worker_keys) delete k;
    for (auto*& c : worker_certs) delete c;
    delete requester_key;
    delete params;
    delete net;
    delete rng;
  }

  static Rng* rng;
  static TestNet* net;
  static SystemParams* params;
  static auth::UserKey* requester_key;
  static auth::UserKey* worker_keys[3];
  static auth::Certificate* worker_certs[3];
  static RequesterClient* requester;
  static WorkerClient* workers[3];
};
Rng* EndToEndTest::rng = nullptr;
TestNet* EndToEndTest::net = nullptr;
SystemParams* EndToEndTest::params = nullptr;
auth::UserKey* EndToEndTest::requester_key = nullptr;
auth::UserKey* EndToEndTest::worker_keys[3] = {};
auth::Certificate* EndToEndTest::worker_certs[3] = {};
RequesterClient* EndToEndTest::requester = nullptr;
WorkerClient* EndToEndTest::workers[3] = {};

TEST_F(EndToEndTest, FullImageAnnotationTask) {
  const Fr root = net->on_chain_registry_root();
  ASSERT_EQ(root, net->ra().registry_root());

  // TaskPublish.
  const TaskSpec spec{.budget = 3'000'000,
                      .num_answers = 3,
                      .policy_name = "majority-vote:4",
                      .answer_deadline_blocks = 200,
                      .instruct_deadline_blocks = 200};
  const chain::Address task = requester->publish(spec, root);
  ASSERT_FALSE(task.is_zero());

  // AnswerCollection: workers 0 and 1 label the image "2", worker 2 says "0".
  const Fr labels[3] = {Fr::from_u64(2), Fr::from_u64(2), Fr::from_u64(0)};
  std::vector<Bytes> tx_hashes;
  for (int i = 0; i < 3; ++i) {
    tx_hashes.push_back(workers[i]->submit_answer(task, labels[i]));
  }
  // Wait until all three submissions are confirmed.
  for (const Bytes& h : tx_hashes) {
    const std::uint64_t deadline = net->network().now() + 300'000;
    for (;;) {
      net->network().run_for(50);
      const auto receipt = net->client_node().chain().find_receipt(h);
      if (receipt.has_value()) {
        EXPECT_TRUE(receipt->success) << receipt->error;
        break;
      }
      ASSERT_LT(net->network().now(), deadline) << "submission not confirmed";
    }
  }
  ASSERT_TRUE(requester->collection_complete());

  // The requester (and only she) reads the answers.
  const std::vector<Fr> decrypted = requester->decrypted_answers();
  ASSERT_EQ(decrypted.size(), 3u);
  EXPECT_EQ(decrypted[0], labels[0]);
  EXPECT_EQ(decrypted[2], labels[2]);

  // On chain there are only ciphertexts — no plaintext answer appears.
  const auto* contract = net->client_node().chain().state().contract_as<TaskContract>(task);
  ASSERT_NE(contract, nullptr);
  for (const auto& s : contract->submissions()) {
    EXPECT_NE(s.ciphertext.payload, labels[0]);
    EXPECT_NE(s.ciphertext.payload, labels[2]);
  }

  // Reward: majority is 2 => workers 0 and 1 get budget/3, worker 2 gets 0.
  const std::uint64_t w0_before =
      net->client_node().chain().state().balance_of(workers[0]->reward_address(task));
  const std::uint64_t w2_before =
      net->client_node().chain().state().balance_of(workers[2]->reward_address(task));
  const std::vector<std::uint64_t> rewards = requester->instruct_rewards();
  EXPECT_EQ(rewards, (std::vector<std::uint64_t>{1'000'000, 1'000'000, 0}));

  const auto& state = net->client_node().chain().state();
  EXPECT_EQ(state.balance_of(workers[0]->reward_address(task)), w0_before + 1'000'000);
  EXPECT_EQ(state.balance_of(workers[2]->reward_address(task)), w2_before)
      << "the minority answer earns nothing";
  EXPECT_TRUE(contract->finalized());
  EXPECT_TRUE(contract->rewarded());
  // Contract balance fully disbursed (remainder refunded to alpha_R).
  EXPECT_EQ(state.balance_of(task), 0u);

  // Watchtower audit: the stored instruction + pi_reward re-verify against
  // on-chain state in one batch; a non-contract address fails the audit.
  EXPECT_EQ(contract->rewards(), rewards);
  EXPECT_TRUE(audit_rewarded_tasks(state, {task}).empty());
  const chain::Address bogus = chain::Address::from_bytes(Bytes(20, 0xab));
  EXPECT_EQ(audit_rewarded_tasks(state, {task, bogus, task}),
            (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace zl::zebralancer
