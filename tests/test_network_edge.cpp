// Edge-case regression tests for the gossip layer — these encode two real
// bugs found during development: (1) a block arriving before its parent was
// dropped forever, permanently splitting the node off the network; (2)
// transactions in orphaned blocks were never returned to the mempool after
// a reorg, wedging every later nonce from the same sender.
#include <gtest/gtest.h>

#include "chain/network.h"

namespace zl::chain {
namespace {

GenesisConfig tiny_genesis(const Address& funded) {
  GenesisConfig g;
  g.allocations = {{funded, 10'000'000}};
  g.difficulty = 4;
  return g;
}

Block mine_block(const GenesisConfig& genesis, const Bytes& parent, std::uint64_t number,
                 std::uint64_t stamp, std::vector<Transaction> txs) {
  Block b;
  b.header.parent_hash = parent;
  b.header.number = number;
  b.header.difficulty = genesis.difficulty;
  b.header.timestamp = stamp;
  b.transactions = std::move(txs);
  b.header.tx_root = Block::compute_tx_root(b.transactions);
  while (!proof_of_work_valid(b.header)) ++b.header.nonce;
  return b;
}

// Expose the protected ingestion hooks for direct delivery-order control.
class ProbeNode : public Node {
 public:
  using Node::Node;
  void deliver_block(const Block& b) { accept_block(b, false); }
  void deliver_tx(const Transaction& tx) { accept_transaction(tx, false); }
  std::size_t mempool_size() const { return mempool_.size(); }
};

TEST(NetworkEdge, ChildBeforeParentIsParkedAndReconnected) {
  Rng rng(1101);
  Wallet alice(rng);
  const GenesisConfig genesis = tiny_genesis(alice.address());
  SimNetwork net({.base_latency_ms = 1, .jitter_ms = 0, .seed = 1});
  ProbeNode node(net, genesis);

  const Block b1 = mine_block(genesis, node.chain().head_hash(), 1, 1, {});
  const Block b2 = mine_block(genesis, b1.hash(), 2, 2, {});
  const Block b3 = mine_block(genesis, b2.hash(), 3, 3, {});

  // Deliver out of order: grandchild, child, then parent.
  node.deliver_block(b3);
  node.deliver_block(b2);
  EXPECT_EQ(node.chain().height(), 0u) << "nothing connects without the parent";
  node.deliver_block(b1);
  EXPECT_EQ(node.chain().height(), 3u) << "orphans must reconnect transitively";
  EXPECT_EQ(node.chain().head_hash(), b3.hash());
}

TEST(NetworkEdge, ReorgResurrectsOrphanedTransactions) {
  Rng rng(1102);
  Wallet alice(rng), bob(rng);
  const GenesisConfig genesis = tiny_genesis(alice.address());
  SimNetwork net({.base_latency_ms = 1, .jitter_ms = 0, .seed = 2});
  ProbeNode node(net, genesis);

  const Transaction tx = alice.make_transaction(bob.address(), 777, 21000, "", {});
  node.deliver_tx(tx);
  EXPECT_EQ(node.mempool_size(), 1u);

  // Branch A includes the tx.
  const Block a1 = mine_block(genesis, node.chain().head_hash(), 1, 1, {tx});
  node.deliver_block(a1);
  EXPECT_TRUE(node.chain().find_receipt(tx.hash()).has_value());
  EXPECT_EQ(node.mempool_size(), 0u);

  // A heavier empty branch B displaces A: the tx must return to the
  // mempool so miners can re-include it.
  const Block b1 = mine_block(genesis, a1.header.parent_hash, 1, 50, {});
  const Block b2 = mine_block(genesis, b1.hash(), 2, 51, {});
  node.deliver_block(b1);
  node.deliver_block(b2);
  EXPECT_EQ(node.chain().head_hash(), b2.hash());
  EXPECT_FALSE(node.chain().find_receipt(tx.hash()).has_value());
  EXPECT_EQ(node.mempool_size(), 1u) << "orphaned tx must be resurrected";
}

TEST(NetworkEdge, DuplicateAndMalformedGossipIgnored) {
  Rng rng(1103);
  Wallet alice(rng);
  const GenesisConfig genesis = tiny_genesis(alice.address());
  SimNetwork net({.base_latency_ms = 1, .jitter_ms = 0, .seed = 3});
  ProbeNode node(net, genesis);

  const Transaction tx = alice.make_transaction(alice.address(), 1, 21000, "", {});
  node.deliver_tx(tx);
  node.deliver_tx(tx);
  EXPECT_EQ(node.mempool_size(), 1u);

  // Garbage payloads must not crash the node.
  node.on_message(MessageKind::kTransaction, Bytes{1, 2, 3});
  node.on_message(MessageKind::kBlock, Bytes(10, 0xff));
  EXPECT_EQ(node.chain().height(), 0u);

  // A transaction with a broken signature is dropped.
  Transaction forged = tx;
  forged.value = 999;  // signature no longer covers this
  node.deliver_tx(forged);
  EXPECT_EQ(node.mempool_size(), 1u);
}

TEST(NetworkEdge, HighJitterNetworkStillConverges) {
  // Stress the orphan pool: jitter comparable to block time.
  Rng rng(1104);
  Wallet coinbase1(rng), coinbase2(rng), faucet(rng);
  GenesisConfig genesis = tiny_genesis(faucet.address());
  genesis.difficulty = 512;  // ~32ms blocks at 16 h/ms vs 20-60ms latency
  SimNetwork net({.base_latency_ms = 20, .jitter_ms = 40, .seed = 4});
  MinerNode miner1(net, genesis, coinbase1.address());
  MinerNode miner2(net, genesis, coinbase2.address());
  Node observer(net, genesis);

  ASSERT_TRUE(net.run_until_height(12, 120'000));
  miner1.set_enabled(false);
  miner2.set_enabled(false);
  net.run_for(1'000);
  EXPECT_EQ(observer.chain().head_hash(), miner1.chain().head_hash());
  EXPECT_EQ(observer.chain().head_hash(), miner2.chain().head_hash());
  EXPECT_GE(observer.chain().height(), 12u);
}

}  // namespace
}  // namespace zl::chain
