// Adversarial integration tests — every attack discussed in the paper's
// security analysis (§V-C) is mounted against the live test net and must be
// defeated by the protocol:
//   * free-riders: double submission, copy-and-resubmit (footnote 9),
//     uncertified identities, submission outside the collection window
//   * false-reporters: wrong reward vectors, non-requester instructions,
//     withheld instructions (timeout fallback), missing budget deposit
//   * a requester submitting to her own task (reward downgrading)
#include <gtest/gtest.h>

#include "zebralancer/scenario.h"

namespace zl::zebralancer {
namespace {

constexpr unsigned kDepth = 6;

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng = new Rng(501);
    net = new TestNet({.merkle_depth = kDepth});
    params = new SystemParams(
        make_system_params(kDepth, {RewardCircuitSpec{2, "majority-vote:4"}}, *rng));

    requester_key = new auth::UserKey(auth::UserKey::generate(*rng));
    worker_key[0] = new auth::UserKey(auth::UserKey::generate(*rng));
    worker_key[1] = new auth::UserKey(auth::UserKey::generate(*rng));
    auto rc = net->register_participant("requester", requester_key->pk);
    auto w0 = net->register_participant("worker-0", worker_key[0]->pk);
    auto w1 = net->register_participant("worker-1", worker_key[1]->pk);
    rc = net->ra().current_certificate(rc.leaf_index);
    w0 = net->ra().current_certificate(w0.leaf_index);
    w1 = net->ra().current_certificate(w1.leaf_index);
    requester_cert = new auth::Certificate(rc);
    worker_cert[0] = new auth::Certificate(w0);
    worker_cert[1] = new auth::Certificate(w1);
  }
  static void TearDownTestSuite() {
    delete worker_cert[1];
    delete worker_cert[0];
    delete requester_cert;
    delete worker_key[1];
    delete worker_key[0];
    delete requester_key;
    delete params;
    delete net;
    delete rng;
  }

  /// Publish a fresh 2-answer task; returns (client, task address).
  static std::pair<std::unique_ptr<RequesterClient>, chain::Address> publish_task(
      std::uint64_t ta_blocks = 300, std::uint64_t ti_blocks = 300) {
    auto client = std::make_unique<RequesterClient>(
        *net, *params, *requester_key, *requester_cert, net->fork_rng("req"));
    const chain::Address task =
        client->publish({.budget = 2'000'000,
                         .num_answers = 2,
                         .policy_name = "majority-vote:4",
                         .answer_deadline_blocks = ta_blocks,
                         .instruct_deadline_blocks = ti_blocks},
                        net->on_chain_registry_root());
    return {std::move(client), task};
  }

  /// Submit and wait for the receipt.
  static chain::Receipt confirm(const Bytes& tx_hash) {
    const std::uint64_t deadline = net->network().now() + 300'000;
    for (;;) {
      net->network().run_for(50);
      const auto receipt = net->client_node().chain().find_receipt(tx_hash);
      if (receipt.has_value()) return *receipt;
      if (net->network().now() >= deadline) throw std::runtime_error("tx not confirmed");
    }
  }

  /// Hand-crafted submission from an arbitrary wallet with arbitrary
  /// attestation/ciphertext (for replay/copy attacks).
  static chain::Receipt raw_submit(chain::Wallet& wallet, const chain::Address& task,
                                   const auth::Attestation& att, const AnswerCiphertext& ct) {
    const chain::Transaction tx = wallet.make_transaction(
        task, 0, 2'000'000, "submit", TaskContract::encode_submit_args(att, ct));
    return net->submit_and_confirm(tx);
  }

  static const TaskContract& task_at(const chain::Address& addr) {
    const auto* c = net->client_node().chain().state().contract_as<TaskContract>(addr);
    if (c == nullptr) throw std::runtime_error("no contract");
    return *c;
  }

  static Rng* rng;
  static TestNet* net;
  static SystemParams* params;
  static auth::UserKey* requester_key;
  static auth::UserKey* worker_key[2];
  static auth::Certificate* requester_cert;
  static auth::Certificate* worker_cert[2];
};
Rng* AttackTest::rng = nullptr;
TestNet* AttackTest::net = nullptr;
SystemParams* AttackTest::params = nullptr;
auth::UserKey* AttackTest::requester_key = nullptr;
auth::UserKey* AttackTest::worker_key[2] = {};
auth::Certificate* AttackTest::requester_cert = nullptr;
auth::Certificate* AttackTest::worker_cert[2] = {};

TEST_F(AttackTest, DoubleSubmissionDropped) {
  auto [client, task] = publish_task();
  WorkerClient honest(*net, *params, *worker_key[0], *worker_cert[0], net->fork_rng("w0"));
  EXPECT_TRUE(confirm(honest.submit_answer(task, Fr::from_u64(1))).success);

  // Same identity submits again — fresh one-task address, fresh attestation,
  // but the t1 tag links: the contract must drop it.
  WorkerClient again(*net, *params, *worker_key[0], *worker_cert[0], net->fork_rng("w0b"));
  const chain::Receipt second = confirm(again.submit_answer(task, Fr::from_u64(2)));
  EXPECT_FALSE(second.success);
  EXPECT_NE(second.error.find("double submission"), std::string::npos) << second.error;
  EXPECT_EQ(task_at(task).submissions().size(), 1u);
}

TEST_F(AttackTest, CopyAttackReplayRejected) {
  // Free-riding (footnote 9): the adversary observes worker 0's broadcast
  // (C_i, pi_i) before confirmation and resubmits it from his own address.
  auto [client, task] = publish_task();
  const Fr root = net->on_chain_registry_root();

  // Build worker 0's legitimate submission by hand so we hold its parts.
  Rng wrng = net->fork_rng("victim");
  chain::Wallet victim_wallet(wrng);
  net->fund(victim_wallet.address(), 3'000'000);
  const JubjubPoint epk = JubjubPoint::from_bytes(task_at(task).params().epk);
  const AnswerCiphertext ct = encrypt_answer(epk, Fr::from_u64(3), wrng);
  const Bytes rest = concat({victim_wallet.address().to_bytes(), ct.to_bytes()});
  const auth::Attestation att = auth::authenticate(params->auth, task.to_bytes(), rest,
                                                   *worker_key[0], *worker_cert[0], root, wrng);

  // The attacker races it from his own funded address. Verification binds
  // the attested alpha_i to the actual sender, so the copy must fail even
  // though it arrives FIRST.
  Rng arng = net->fork_rng("attacker");
  chain::Wallet attacker_wallet(arng);
  net->fund(attacker_wallet.address(), 3'000'000);
  const chain::Receipt stolen = raw_submit(attacker_wallet, task, att, ct);
  EXPECT_FALSE(stolen.success);
  EXPECT_NE(stolen.error.find("attestation invalid"), std::string::npos) << stolen.error;

  // The victim's original still goes through afterwards.
  const chain::Receipt original = raw_submit(victim_wallet, task, att, ct);
  EXPECT_TRUE(original.success) << original.error;
}

TEST_F(AttackTest, UncertifiedIdentityRejected) {
  // A rogue RA certifies an identity the real RA never saw; its root is not
  // the on-chain root, so the attestation cannot verify.
  auto [client, task] = publish_task();
  Rng orng = net->fork_rng("outsider");
  const auth::UserKey outsider = auth::UserKey::generate(orng);
  auth::RegistrationAuthority rogue_ra(kDepth);
  const auth::Certificate rogue_cert = rogue_ra.register_identity("outsider", outsider.pk);

  chain::Wallet wallet(orng);
  net->fund(wallet.address(), 3'000'000);
  const JubjubPoint epk = JubjubPoint::from_bytes(task_at(task).params().epk);
  const AnswerCiphertext ct = encrypt_answer(epk, Fr::from_u64(1), orng);
  const Bytes rest = concat({wallet.address().to_bytes(), ct.to_bytes()});
  // The outsider can only prove membership under the rogue root.
  const auth::Attestation att = auth::authenticate(
      params->auth, task.to_bytes(), rest, outsider, rogue_cert, rogue_ra.registry_root(), orng);
  const chain::Receipt receipt = raw_submit(wallet, task, att, ct);
  EXPECT_FALSE(receipt.success);
  EXPECT_NE(receipt.error.find("attestation invalid"), std::string::npos) << receipt.error;
}

TEST_F(AttackTest, RequesterCannotSubmitToOwnTask) {
  // Downgrading attack: the requester anonymously submits an answer to her
  // own task. Link(pi_i, pi_R) exposes her.
  auto [client, task] = publish_task();
  WorkerClient disguised(*net, *params, *requester_key, *requester_cert,
                         net->fork_rng("disguised"));
  const chain::Receipt receipt = confirm(disguised.submit_answer(task, Fr::from_u64(0)));
  EXPECT_FALSE(receipt.success);
  EXPECT_NE(receipt.error.find("requester cannot submit"), std::string::npos) << receipt.error;
}

TEST_F(AttackTest, WithheldInstructionTriggersFallbackSplit) {
  // False-reporting by silence: the requester collects answers but never
  // sends an instruction. After T_I anyone can finalize; each submitter
  // gets tau/||W|| and the remainder returns to alpha_R.
  auto [client, task] = publish_task(/*ta=*/8, /*ti=*/8);
  WorkerClient w0(*net, *params, *worker_key[0], *worker_cert[0], net->fork_rng("f0"));
  const chain::Receipt sub = confirm(w0.submit_answer(task, Fr::from_u64(1)));
  ASSERT_TRUE(sub.success) << sub.error;
  const chain::Address reward_addr = w0.reward_address(task);
  const std::uint64_t before = net->client_node().chain().state().balance_of(reward_addr);

  // Let both deadlines lapse.
  net->advance_blocks(20);
  ASSERT_GT(net->height(), task_at(task).instruction_deadline());

  Rng prng = net->fork_rng("poker");
  chain::Wallet poker(prng);
  net->fund(poker.address(), 1'000'000);
  const chain::Receipt fin = net->submit_and_confirm(
      poker.make_transaction(task, 0, 500'000, "finalize", {}));
  ASSERT_TRUE(fin.success) << fin.error;

  const auto& state = net->client_node().chain().state();
  // tau / ||W|| = 2'000'000 / 1.
  EXPECT_EQ(state.balance_of(reward_addr), before + 2'000'000);
  EXPECT_EQ(state.balance_of(task), 0u);
  EXPECT_TRUE(task_at(task).finalized());
  EXPECT_FALSE(task_at(task).rewarded());
}

TEST_F(AttackTest, EarlyFinalizeAndForeignRewardRejected) {
  auto [client, task] = publish_task();
  // Finalize before the window closes: rejected.
  Rng prng = net->fork_rng("early");
  chain::Wallet poker(prng);
  net->fund(poker.address(), 5'000'000);  // enough for both probes' gas
  const chain::Receipt early = net->submit_and_confirm(
      poker.make_transaction(task, 0, 500'000, "finalize", {}));
  EXPECT_FALSE(early.success);
  // Reward instruction from anyone but alpha_R: rejected before any proof
  // is even checked.
  const chain::Receipt foreign = net->submit_and_confirm(poker.make_transaction(
      task, 0, 2'000'000, "reward",
      TaskContract::encode_reward_args({1'000'000, 1'000'000}, snark::Proof{})));
  EXPECT_FALSE(foreign.success);
  EXPECT_NE(foreign.error.find("not the requester"), std::string::npos) << foreign.error;
}

TEST_F(AttackTest, SubmissionAfterDeadlineRejected) {
  auto [client, task] = publish_task(/*ta=*/5, /*ti=*/50);
  net->advance_blocks(10);
  ASSERT_GT(net->height(), task_at(task).collection_deadline());
  WorkerClient late(*net, *params, *worker_key[1], *worker_cert[1], net->fork_rng("late"));
  EXPECT_THROW(late.submit_answer(task, Fr::from_u64(1)), std::invalid_argument)
      << "client-side validation notices the closed window";
}

TEST_F(AttackTest, BudgetNotDepositedRejectsDeployment) {
  // Craft a deployment whose attached value is below the declared budget
  // (Algorithm 1 line 3).
  Rng drng = net->fork_rng("cheap");
  chain::Wallet wallet(drng);
  const chain::Address alpha_r = wallet.address();
  const chain::Address alpha_c = chain::Address::for_contract(alpha_r, 0);
  const auth::Attestation att =
      auth::authenticate(params->auth, alpha_c.to_bytes(), alpha_r.to_bytes(), *requester_key,
                         *requester_cert, net->on_chain_registry_root(), drng);
  TaskParams p;
  p.requester_address = alpha_r;
  p.requester_attestation = att.to_bytes();
  p.registry_root = net->on_chain_registry_root();
  p.budget = 2'000'000;
  Rng erng = net->fork_rng("enc");
  p.epk = TaskEncKeyPair::generate(erng).epk.to_bytes();
  p.num_answers = 2;
  p.answer_deadline_blocks = 10;
  p.instruct_deadline_blocks = 10;
  p.policy_name = "majority-vote:4";
  p.auth_vk = params->auth.keys.vk.to_bytes();
  p.reward_vk = params->reward_keypair({2, "majority-vote:4"}).vk.to_bytes();

  net->fund(alpha_r, 6'000'000);
  const Bytes args = p.to_bytes();
  // Attach only half the budget.
  const chain::Receipt receipt = net->submit_and_confirm(wallet.make_transaction(
      chain::Address(), 1'000'000, 2'000'000 + 2 * args.size(), TaskContract::kContractType,
      args));
  EXPECT_FALSE(receipt.success);
  EXPECT_NE(receipt.error.find("budget not deposited"), std::string::npos) << receipt.error;
}

}  // namespace
}  // namespace zl::zebralancer
