// SHA-256 circuit gadget tests: every word-level operation and the full
// digest are checked bit-for-bit against the native FIPS 180-4
// implementation, plus tamper-unsatisfiability.
#include <gtest/gtest.h>

#include "snark/gadgets/sha256_gadget.h"

namespace zl::snark {
namespace {

bool satisfied(const CircuitBuilder& b) {
  return b.constraint_system().is_satisfied(b.assignment());
}

std::uint32_t rotr32(std::uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

TEST(Sha256Gadget, WordRoundTrip) {
  CircuitBuilder b;
  for (const std::uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(word_value(word_constant(v)), v);
    const WordWires w = word_witness(b, v);
    EXPECT_EQ(word_value(w), v);
    EXPECT_EQ(word_to_wire(w).value, Fr::from_u64(v));
  }
  EXPECT_TRUE(satisfied(b));
}

TEST(Sha256Gadget, BitwiseOpsMatchNative) {
  Rng rng(701);
  CircuitBuilder b;
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t y = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t z = static_cast<std::uint32_t>(rng.next_u64());
    const WordWires wx = word_witness(b, x), wy = word_witness(b, y), wz = word_witness(b, z);
    EXPECT_EQ(word_value(word_xor(b, wx, wy)), x ^ y);
    EXPECT_EQ(word_value(word_rotr(wx, 7)), rotr32(x, 7));
    EXPECT_EQ(word_value(word_shr(wx, 3)), x >> 3);
    EXPECT_EQ(word_value(word_ch(b, wx, wy, wz)), (x & y) ^ (~x & z));
    EXPECT_EQ(word_value(word_maj(b, wx, wy, wz)), (x & y) ^ (x & z) ^ (y & z));
  }
  EXPECT_TRUE(satisfied(b));
}

TEST(Sha256Gadget, ModularAddition) {
  Rng rng(702);
  CircuitBuilder b;
  for (const std::size_t k : {1u, 2u, 5u, 8u}) {
    std::vector<WordWires> terms;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
      terms.push_back(word_witness(b, v));
      sum += v;
    }
    EXPECT_EQ(word_value(word_add(b, terms)), static_cast<std::uint32_t>(sum));
  }
  EXPECT_TRUE(satisfied(b));
  EXPECT_THROW(word_add(b, {}), std::invalid_argument);
}

TEST(Sha256Gadget, DigestMatchesNative) {
  Rng rng(703);
  for (const std::size_t words : {1u, 8u, 13u}) {
    // Build the byte message matching the words (big-endian per FIPS).
    std::vector<std::uint32_t> msg;
    Bytes msg_bytes;
    for (std::size_t i = 0; i < words; ++i) {
      const std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
      msg.push_back(v);
      append_u32_be(msg_bytes, v);
    }
    const Bytes native = Sha256::hash(msg_bytes);

    CircuitBuilder b;
    std::vector<WordWires> wires;
    for (const std::uint32_t v : msg) wires.push_back(word_witness(b, v));
    const std::array<WordWires, 8> digest = sha256_digest_gadget(b, wires);
    ASSERT_TRUE(satisfied(b)) << words << " words";
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(word_value(digest[i]), read_u32_be(native, 4 * i)) << "word " << i;
    }
  }
}

TEST(Sha256Gadget, ConstraintCountIsSha256Scale) {
  CircuitBuilder b;
  std::vector<WordWires> wires = {word_witness(b, 42), word_witness(b, 43)};
  sha256_digest_gadget(b, wires);
  // One compression is ~25-30k constraints — the reason the paper's Fig. 4
  // proving time is ~70s and ours (MiMC) is ~2s.
  EXPECT_GT(b.num_constraints(), 20000u);
  EXPECT_LT(b.num_constraints(), 40000u);
}

TEST(Sha256Gadget, TamperedDigestUnsatisfiable) {
  CircuitBuilder b;
  std::vector<WordWires> wires = {word_witness(b, 0xabcdef01u)};
  const std::array<WordWires, 8> digest = sha256_digest_gadget(b, wires);
  // Constrain the first digest word to a wrong constant.
  const std::uint32_t truth = word_value(digest[0]);
  b.enforce_equal(word_to_wire(digest[0]), Wire::constant(Fr::from_u64(truth ^ 1)));
  EXPECT_FALSE(satisfied(b));
}

TEST(Sha256Gadget, RejectsOversizeMessages) {
  CircuitBuilder b;
  std::vector<WordWires> wires(14, word_constant(0));
  EXPECT_THROW(sha256_digest_gadget(b, wires), std::invalid_argument);
}

}  // namespace
}  // namespace zl::snark
