// The concurrency-correctness gate (DESIGN.md §13), runtime half.
//
// Three layers of coverage:
//   1. OrderedMutex rank-detector semantics: in-order nesting is silent,
//      non-LIFO release is tracked correctly, and a planted lock-order
//      inversion — the shape of every lock-inversion deadlock — aborts with
//      both lock names (EXPECT_DEATH).
//   2. A mempool/miner stress: concurrent admit / on_confirmed / build_block
//      against two miner threads driving a Blockchain through a reorg storm,
//      with the chain wrapped in a kChain-ranked host lock exactly as the
//      lock-hierarchy table prescribes. Single-threaded mempool tests cannot
//      see index races; this one runs under the tsan leg of check_all.sh.
//   3. The validation-control seam: clear_validation_caches() and
//      set_parallel_validation() hammered from one thread while another
//      validates whole blocks — a concurrent clear must only ever cost a
//      memo miss, never change a verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "chain/mempool.h"
#include "chain/network.h"
#include "chain/validation.h"
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace zl::chain {
namespace {

GenesisConfig funded_genesis(const std::vector<Wallet*>& wallets,
                             std::uint64_t amount = 100'000'000) {
  GenesisConfig g;
  g.difficulty = 4;
  for (const Wallet* w : wallets) g.allocations.emplace_back(w->address(), amount);
  return g;
}

Block mine_block(const GenesisConfig& genesis, const Bytes& parent, std::uint64_t number,
                 std::uint64_t stamp, std::vector<Transaction> txs) {
  Block b;
  b.header.parent_hash = parent;
  b.header.number = number;
  b.header.difficulty = genesis.difficulty;
  b.header.timestamp = stamp;
  b.transactions = std::move(txs);
  b.header.tx_root = Block::compute_tx_root(b.transactions);
  while (!proof_of_work_valid(b.header)) ++b.header.nonce;
  return b;
}

Transaction bid(Wallet& w, const Address& to, std::uint64_t fee_bid) {
  return w.make_transaction(to, 1, fee_bid, "", {});
}

// --- 1. OrderedMutex rank detector -----------------------------------------

TEST(OrderedMutex, InOrderNestingIsSilent) {
  OrderedMutex outer(LockRank::kChain, "test.outer");
  OrderedMutex inner(LockRank::kMempool, "test.inner");
  MutexLock a(outer);
  MutexLock b(inner);  // 30 after 10: strictly increasing, fine
  SUCCEED();
}

TEST(OrderedMutex, ReacquireLowerRankAfterReleaseIsFine) {
  OrderedMutex high(LockRank::kSnarkMemoCache, "test.high");
  OrderedMutex low(LockRank::kChainEvents, "test.low");
  { MutexLock a(high); }
  MutexLock b(low);  // never held together: no ordering constraint
  SUCCEED();
}

TEST(OrderedMutex, NonLifoReleaseUntracksTheRightLock) {
  OrderedMutex a(LockRank::kChain, "test.a");
  OrderedMutex b(LockRank::kMempool, "test.b");
  std::unique_lock<OrderedMutex> la(a);
  std::unique_lock<OrderedMutex> lb(b);
  la.unlock();  // release the OLDER lock first (non-LIFO)
  // If the detector had popped b instead of a, this re-acquisition of a
  // (rank 10) would look like an inversion against the still-held b (30)
  // ... which it genuinely is — so acquire a fresh rank-50 lock instead:
  // it must be silent because only b (30) is genuinely held.
  OrderedMutex c(LockRank::kPoolQueue, "test.c");
  MutexLock lc(c);
  SUCCEED();
}

TEST(OrderedMutex, MutexUnlockReleasesForTheScope) {
  OrderedMutex outer(LockRank::kPoolQueue, "test.outer");
  OrderedMutex lower(LockRank::kMempool, "test.lower");
  MutexLock l(outer);
  {
    MutexUnlock u(outer);
    // outer (50) is released here, so taking rank 30 is legal...
    MutexLock l2(lower);
  }  // ...and u's destructor reacquires outer with only nothing held.
  SUCCEED();
}

using OrderedMutexDeathTest = ::testing::Test;

TEST(OrderedMutexDeathTest, PlantedInversionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex pool_lock(LockRank::kMempool, "test.mempool");
  OrderedMutex event_lock(LockRank::kChainEvents, "test.events");
  MutexLock held(pool_lock);
  // kChainEvents (20) after kMempool (30): the classic inversion. The
  // detector must abort before blocking, naming both locks.
  EXPECT_DEATH({ MutexLock inverted(event_lock); },
               "lock-rank violation: acquiring \"test.events\" \\(rank 20\\) while holding "
               "\"test.mempool\" \\(rank 30\\)");
}

TEST(OrderedMutexDeathTest, EqualRankAlsoDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two kLeaf locks: leaf rank means "never nests another acquisition", so
  // even an equal-rank second acquisition is an ordering bug (and a real
  // deadlock if two threads take them in opposite orders).
  OrderedMutex a(LockRank::kLeaf, "test.leaf_a");
  OrderedMutex b(LockRank::kLeaf, "test.leaf_b");
  MutexLock held(a);
  EXPECT_DEATH({ MutexLock second(b); }, "lock-rank violation");
}

// --- 2. Mempool + miner stress under the documented hierarchy ---------------

// Two producer threads gossip pre-signed transactions into the pool while
// two miner threads build templates, grind PoW, extend the chain (one of
// them periodically publishing a heavier private branch to force reorgs),
// and feed HeadEvents back into the pool. The Blockchain is externally
// synchronized by a kChain-ranked lock per the DESIGN.md §13 convention, so
// this test also exercises every documented nesting: chain -> mempool
// (template building), chain -> pool region/queue (prevalidation), chain ->
// sig/snark caches (apply), chain -> events (fork choice), events -> mempool
// hand-off on the consumer side.
TEST(MempoolConcurrencyStress, AdmitConfirmBuildRaceWithReorgStorm) {
  Rng rng(4242);
  constexpr std::size_t kWallets = 8;
  constexpr std::size_t kTxPerWallet = 24;
  std::vector<Wallet> wallets;
  wallets.reserve(kWallets);
  for (std::size_t i = 0; i < kWallets; ++i) wallets.emplace_back(rng);
  Wallet sink(rng);

  std::vector<Wallet*> wallet_ptrs;
  for (Wallet& w : wallets) wallet_ptrs.push_back(&w);
  const GenesisConfig genesis = funded_genesis(wallet_ptrs);

  // Pre-sign everything single-threaded: Wallet mutates its nonce counter
  // and is not a shared-state class. Producers below only read these.
  std::vector<Transaction> pending;
  for (Wallet& w : wallets) {
    for (std::size_t n = 0; n < kTxPerWallet; ++n) {
      pending.push_back(bid(w, sink.address(), 21'000 + 100 * (n % 7)));
    }
  }

  Blockchain chain(genesis);
  OrderedMutex chain_mu(LockRank::kChain, "test.chain");  // the host lock
  Mempool pool(/*max_txs=*/128);  // small cap: eviction races too
  std::atomic<std::size_t> next_tx{0};

  auto producer = [&] {
    for (;;) {
      const std::size_t i = next_tx.fetch_add(1, std::memory_order_relaxed);
      if (i >= pending.size()) return;
      // chain_nonce 0 keeps producers off the chain lock entirely; stale
      // nonces are evicted by on_confirmed like any raced admission.
      pool.admit(pending[i], 0);
    }
  };

  auto drain_events = [&] {
    // Consumer side of the HeadEvent seam: events_mu_ then mempool locks,
    // never the chain lock.
    for (const Blockchain::HeadEvent& ev : chain.take_head_events()) {
      if (!ev.confirmed) continue;
      const auto receipt_tx = std::find_if(
          pending.begin(), pending.end(),
          [&](const Transaction& tx) { return to_hex(tx.hash()) == ev.tx_hash_hex; });
      if (receipt_tx != pending.end()) pool.on_confirmed(receipt_tx->from, receipt_tx->nonce);
    }
  };

  auto miner = [&](bool reorg_attacker) {
    std::uint64_t stamp = reorg_attacker ? 1'000'000 : 1;
    for (int iter = 0; iter < 10; ++iter) {
      Bytes parent;
      std::uint64_t number = 0;
      std::vector<Transaction> txs;
      {
        MutexLock l(chain_mu);
        parent = chain.head_hash();
        number = chain.height() + 1;
        txs = pool.build_block(chain.state(), 8);  // kChain -> kMempool nesting
      }
      if (reorg_attacker && iter % 3 == 2) {
        // Publish a two-block private branch from the same parent: strictly
        // heavier than any single competing block, so fork choice must
        // reorg onto it and emit a dropped+confirmed diff.
        const Block b1 = mine_block(genesis, parent, number, ++stamp, txs);
        const Block b2 = mine_block(genesis, b1.hash(), number + 1, ++stamp, {});
        MutexLock l(chain_mu);
        chain.add_block(b1);
        chain.add_block(b2);
      } else {
        const Block b = mine_block(genesis, parent, number, ++stamp, txs);
        MutexLock l(chain_mu);
        chain.add_block(b);
      }
      drain_events();
    }
  };

  std::thread p1(producer), p2(producer);
  std::thread m1([&] { miner(false); }), m2([&] { miner(true); });
  p1.join();
  p2.join();
  m1.join();
  m2.join();

  drain_events();
  // The storm must have actually built a chain, and the pool must still be
  // internally consistent: every next-executable template transaction the
  // final state admits is well-formed (build_block walks all indexes).
  EXPECT_GE(chain.height(), 10u);
  {
    MutexLock l(chain_mu);
    const std::vector<Transaction> tmpl = pool.build_block(chain.state(), 1024);
    for (const Transaction& tx : tmpl) {
      EXPECT_GE(tx.nonce, chain.state().nonce_of(tx.from));
    }
  }
  EXPECT_TRUE(chain.take_head_events().empty());
}

// --- 3. clear_validation_caches / set_parallel_validation mid-validation ----

TEST(ValidationControlConcurrency, ClearAndToggleWhileAnotherThreadValidates) {
  Rng rng(777);
  Wallet alice(rng), sink(rng);
  const GenesisConfig genesis = funded_genesis({&alice});

  // Pre-mine a 5-block chain of sequential transfers.
  std::vector<Block> blocks;
  {
    Blockchain scratch(genesis);
    Bytes parent = scratch.head_hash();
    for (std::uint64_t n = 0; n < 5; ++n) {
      const Block b = mine_block(genesis, parent, n + 1, n + 1,
                                 {bid(alice, sink.address(), 21'000 + n)});
      ASSERT_TRUE(scratch.add_block(b));
      parent = scratch.head_hash();
      alice.set_nonce(n + 1);
    }
    for (const Bytes& h : scratch.canonical_chain()) {
      if (const Block* b = scratch.block_by_hash(h); b->header.number > 0) blocks.push_back(*b);
    }
    ASSERT_EQ(blocks.size(), 5u);
  }

  std::atomic<bool> validating{true};
  std::thread saboteur([&] {
    // The documented contract: both calls are safe mid-validation — a clear
    // is only ever a memo miss, the toggle only selects how verdicts are
    // computed. TSan checks the lock story; the asserts below check that
    // verdicts never change.
    while (validating.load(std::memory_order_acquire)) {
      clear_validation_caches();
      set_parallel_validation(false);
      set_parallel_validation(true);
      std::this_thread::yield();
    }
  });

  for (int round = 0; round < 3; ++round) {
    Blockchain replay(genesis);
    for (const Block& b : blocks) ASSERT_TRUE(replay.add_block(b));
    EXPECT_EQ(replay.height(), 5u);
    // Verdicts are invariant under cache clears: all five transfers landed.
    EXPECT_EQ(replay.state().nonce_of(alice.address()), 5u);
    for (const Block& b : blocks) {
      EXPECT_TRUE(replay.find_receipt(b.transactions[0].hash()).has_value());
    }
  }
  validating.store(false, std::memory_order_release);
  saboteur.join();
  set_parallel_validation(true);
}

}  // namespace
}  // namespace zl::chain
