# Empty dependencies file for sealed_bid_auction.
# This may be replaced when dependencies are built.
