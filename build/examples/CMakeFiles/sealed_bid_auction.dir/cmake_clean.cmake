file(REMOVE_RECURSE
  "CMakeFiles/sealed_bid_auction.dir/sealed_bid_auction.cpp.o"
  "CMakeFiles/sealed_bid_auction.dir/sealed_bid_auction.cpp.o.d"
  "sealed_bid_auction"
  "sealed_bid_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealed_bid_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
