# Empty dependencies file for image_annotation.
# This may be replaced when dependencies are built.
