# Empty compiler generated dependencies file for image_annotation.
# This may be replaced when dependencies are built.
