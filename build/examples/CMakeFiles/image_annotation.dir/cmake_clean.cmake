file(REMOVE_RECURSE
  "CMakeFiles/image_annotation.dir/image_annotation.cpp.o"
  "CMakeFiles/image_annotation.dir/image_annotation.cpp.o.d"
  "image_annotation"
  "image_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
