file(REMOVE_RECURSE
  "CMakeFiles/anonymous_auth_demo.dir/anonymous_auth_demo.cpp.o"
  "CMakeFiles/anonymous_auth_demo.dir/anonymous_auth_demo.cpp.o.d"
  "anonymous_auth_demo"
  "anonymous_auth_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_auth_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
