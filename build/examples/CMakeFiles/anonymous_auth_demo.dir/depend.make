# Empty dependencies file for anonymous_auth_demo.
# This may be replaced when dependencies are built.
