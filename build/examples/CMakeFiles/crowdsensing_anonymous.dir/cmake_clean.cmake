file(REMOVE_RECURSE
  "CMakeFiles/crowdsensing_anonymous.dir/crowdsensing_anonymous.cpp.o"
  "CMakeFiles/crowdsensing_anonymous.dir/crowdsensing_anonymous.cpp.o.d"
  "crowdsensing_anonymous"
  "crowdsensing_anonymous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsensing_anonymous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
