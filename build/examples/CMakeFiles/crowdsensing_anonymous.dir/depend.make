# Empty dependencies file for crowdsensing_anonymous.
# This may be replaced when dependencies are built.
