# Empty dependencies file for bench_e2e_testnet.
# This may be replaced when dependencies are built.
