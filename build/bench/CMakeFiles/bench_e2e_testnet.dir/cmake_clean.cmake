file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_testnet.dir/bench_e2e_testnet.cpp.o"
  "CMakeFiles/bench_e2e_testnet.dir/bench_e2e_testnet.cpp.o.d"
  "bench_e2e_testnet"
  "bench_e2e_testnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_testnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
