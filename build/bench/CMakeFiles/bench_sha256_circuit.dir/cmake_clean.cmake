file(REMOVE_RECURSE
  "CMakeFiles/bench_sha256_circuit.dir/bench_sha256_circuit.cpp.o"
  "CMakeFiles/bench_sha256_circuit.dir/bench_sha256_circuit.cpp.o.d"
  "bench_sha256_circuit"
  "bench_sha256_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sha256_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
