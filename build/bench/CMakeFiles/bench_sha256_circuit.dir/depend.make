# Empty dependencies file for bench_sha256_circuit.
# This may be replaced when dependencies are built.
