# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("field")
subdirs("ec")
subdirs("snark")
subdirs("auth")
subdirs("chain")
subdirs("zebralancer")
