# Empty compiler generated dependencies file for zl_auth.
# This may be replaced when dependencies are built.
