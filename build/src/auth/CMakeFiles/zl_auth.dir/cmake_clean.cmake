file(REMOVE_RECURSE
  "CMakeFiles/zl_auth.dir/classic_auth.cpp.o"
  "CMakeFiles/zl_auth.dir/classic_auth.cpp.o.d"
  "CMakeFiles/zl_auth.dir/cpl_auth.cpp.o"
  "CMakeFiles/zl_auth.dir/cpl_auth.cpp.o.d"
  "libzl_auth.a"
  "libzl_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
