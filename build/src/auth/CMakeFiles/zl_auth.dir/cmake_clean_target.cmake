file(REMOVE_RECURSE
  "libzl_auth.a"
)
