file(REMOVE_RECURSE
  "CMakeFiles/zl_crypto.dir/bigint.cpp.o"
  "CMakeFiles/zl_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/bytes.cpp.o"
  "CMakeFiles/zl_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/zl_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/keccak.cpp.o"
  "CMakeFiles/zl_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/merkle.cpp.o"
  "CMakeFiles/zl_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/mimc.cpp.o"
  "CMakeFiles/zl_crypto.dir/mimc.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/rng.cpp.o"
  "CMakeFiles/zl_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/rsa.cpp.o"
  "CMakeFiles/zl_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/zl_crypto.dir/sha256.cpp.o"
  "CMakeFiles/zl_crypto.dir/sha256.cpp.o.d"
  "libzl_crypto.a"
  "libzl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
