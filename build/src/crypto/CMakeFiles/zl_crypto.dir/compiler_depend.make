# Empty compiler generated dependencies file for zl_crypto.
# This may be replaced when dependencies are built.
