file(REMOVE_RECURSE
  "libzl_crypto.a"
)
