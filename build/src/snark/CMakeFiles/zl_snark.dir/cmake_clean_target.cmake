file(REMOVE_RECURSE
  "libzl_snark.a"
)
