# Empty dependencies file for zl_snark.
# This may be replaced when dependencies are built.
