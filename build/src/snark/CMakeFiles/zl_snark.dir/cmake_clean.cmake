file(REMOVE_RECURSE
  "CMakeFiles/zl_snark.dir/domain.cpp.o"
  "CMakeFiles/zl_snark.dir/domain.cpp.o.d"
  "CMakeFiles/zl_snark.dir/gadgets/gadgets.cpp.o"
  "CMakeFiles/zl_snark.dir/gadgets/gadgets.cpp.o.d"
  "CMakeFiles/zl_snark.dir/gadgets/jubjub_gadget.cpp.o"
  "CMakeFiles/zl_snark.dir/gadgets/jubjub_gadget.cpp.o.d"
  "CMakeFiles/zl_snark.dir/gadgets/merkle_gadget.cpp.o"
  "CMakeFiles/zl_snark.dir/gadgets/merkle_gadget.cpp.o.d"
  "CMakeFiles/zl_snark.dir/gadgets/mimc_gadget.cpp.o"
  "CMakeFiles/zl_snark.dir/gadgets/mimc_gadget.cpp.o.d"
  "CMakeFiles/zl_snark.dir/gadgets/sha256_gadget.cpp.o"
  "CMakeFiles/zl_snark.dir/gadgets/sha256_gadget.cpp.o.d"
  "CMakeFiles/zl_snark.dir/groth16.cpp.o"
  "CMakeFiles/zl_snark.dir/groth16.cpp.o.d"
  "CMakeFiles/zl_snark.dir/r1cs.cpp.o"
  "CMakeFiles/zl_snark.dir/r1cs.cpp.o.d"
  "libzl_snark.a"
  "libzl_snark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_snark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
