
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snark/domain.cpp" "src/snark/CMakeFiles/zl_snark.dir/domain.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/domain.cpp.o.d"
  "/root/repo/src/snark/gadgets/gadgets.cpp" "src/snark/CMakeFiles/zl_snark.dir/gadgets/gadgets.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/gadgets/gadgets.cpp.o.d"
  "/root/repo/src/snark/gadgets/jubjub_gadget.cpp" "src/snark/CMakeFiles/zl_snark.dir/gadgets/jubjub_gadget.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/gadgets/jubjub_gadget.cpp.o.d"
  "/root/repo/src/snark/gadgets/merkle_gadget.cpp" "src/snark/CMakeFiles/zl_snark.dir/gadgets/merkle_gadget.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/gadgets/merkle_gadget.cpp.o.d"
  "/root/repo/src/snark/gadgets/mimc_gadget.cpp" "src/snark/CMakeFiles/zl_snark.dir/gadgets/mimc_gadget.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/gadgets/mimc_gadget.cpp.o.d"
  "/root/repo/src/snark/gadgets/sha256_gadget.cpp" "src/snark/CMakeFiles/zl_snark.dir/gadgets/sha256_gadget.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/gadgets/sha256_gadget.cpp.o.d"
  "/root/repo/src/snark/groth16.cpp" "src/snark/CMakeFiles/zl_snark.dir/groth16.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/groth16.cpp.o.d"
  "/root/repo/src/snark/r1cs.cpp" "src/snark/CMakeFiles/zl_snark.dir/r1cs.cpp.o" "gcc" "src/snark/CMakeFiles/zl_snark.dir/r1cs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/zl_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
