
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zebralancer/classic_clients.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/classic_clients.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/classic_clients.cpp.o.d"
  "/root/repo/src/zebralancer/clients.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/clients.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/clients.cpp.o.d"
  "/root/repo/src/zebralancer/encryption.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/encryption.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/encryption.cpp.o.d"
  "/root/repo/src/zebralancer/policy.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/policy.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/policy.cpp.o.d"
  "/root/repo/src/zebralancer/ra_contract.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/ra_contract.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/ra_contract.cpp.o.d"
  "/root/repo/src/zebralancer/reputation.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/reputation.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/reputation.cpp.o.d"
  "/root/repo/src/zebralancer/reward_circuit.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/reward_circuit.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/reward_circuit.cpp.o.d"
  "/root/repo/src/zebralancer/scenario.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/scenario.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/scenario.cpp.o.d"
  "/root/repo/src/zebralancer/task_contract.cpp" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/task_contract.cpp.o" "gcc" "src/zebralancer/CMakeFiles/zl_zebralancer.dir/task_contract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auth/CMakeFiles/zl_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/zl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/snark/CMakeFiles/zl_snark.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zl_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
