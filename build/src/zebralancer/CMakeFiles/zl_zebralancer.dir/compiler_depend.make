# Empty compiler generated dependencies file for zl_zebralancer.
# This may be replaced when dependencies are built.
