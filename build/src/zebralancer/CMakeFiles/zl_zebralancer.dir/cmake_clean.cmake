file(REMOVE_RECURSE
  "CMakeFiles/zl_zebralancer.dir/classic_clients.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/classic_clients.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/clients.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/clients.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/encryption.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/encryption.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/policy.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/policy.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/ra_contract.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/ra_contract.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/reputation.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/reputation.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/reward_circuit.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/reward_circuit.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/scenario.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/scenario.cpp.o.d"
  "CMakeFiles/zl_zebralancer.dir/task_contract.cpp.o"
  "CMakeFiles/zl_zebralancer.dir/task_contract.cpp.o.d"
  "libzl_zebralancer.a"
  "libzl_zebralancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_zebralancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
