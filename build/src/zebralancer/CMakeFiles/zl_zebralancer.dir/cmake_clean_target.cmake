file(REMOVE_RECURSE
  "libzl_zebralancer.a"
)
