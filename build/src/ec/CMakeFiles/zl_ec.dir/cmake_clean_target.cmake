file(REMOVE_RECURSE
  "libzl_ec.a"
)
