file(REMOVE_RECURSE
  "CMakeFiles/zl_ec.dir/pairing.cpp.o"
  "CMakeFiles/zl_ec.dir/pairing.cpp.o.d"
  "libzl_ec.a"
  "libzl_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
