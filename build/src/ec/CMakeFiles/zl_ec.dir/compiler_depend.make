# Empty compiler generated dependencies file for zl_ec.
# This may be replaced when dependencies are built.
