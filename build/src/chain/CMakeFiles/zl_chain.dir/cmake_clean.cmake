file(REMOVE_RECURSE
  "CMakeFiles/zl_chain.dir/block.cpp.o"
  "CMakeFiles/zl_chain.dir/block.cpp.o.d"
  "CMakeFiles/zl_chain.dir/blockchain.cpp.o"
  "CMakeFiles/zl_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/zl_chain.dir/datastore.cpp.o"
  "CMakeFiles/zl_chain.dir/datastore.cpp.o.d"
  "CMakeFiles/zl_chain.dir/light_client.cpp.o"
  "CMakeFiles/zl_chain.dir/light_client.cpp.o.d"
  "CMakeFiles/zl_chain.dir/network.cpp.o"
  "CMakeFiles/zl_chain.dir/network.cpp.o.d"
  "CMakeFiles/zl_chain.dir/state.cpp.o"
  "CMakeFiles/zl_chain.dir/state.cpp.o.d"
  "CMakeFiles/zl_chain.dir/tx.cpp.o"
  "CMakeFiles/zl_chain.dir/tx.cpp.o.d"
  "libzl_chain.a"
  "libzl_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zl_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
