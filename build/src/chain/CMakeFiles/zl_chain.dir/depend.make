# Empty dependencies file for zl_chain.
# This may be replaced when dependencies are built.
