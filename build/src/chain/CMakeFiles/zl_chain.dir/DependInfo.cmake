
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/zl_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/zl_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/datastore.cpp" "src/chain/CMakeFiles/zl_chain.dir/datastore.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/datastore.cpp.o.d"
  "/root/repo/src/chain/light_client.cpp" "src/chain/CMakeFiles/zl_chain.dir/light_client.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/light_client.cpp.o.d"
  "/root/repo/src/chain/network.cpp" "src/chain/CMakeFiles/zl_chain.dir/network.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/network.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/zl_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/state.cpp.o.d"
  "/root/repo/src/chain/tx.cpp" "src/chain/CMakeFiles/zl_chain.dir/tx.cpp.o" "gcc" "src/chain/CMakeFiles/zl_chain.dir/tx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snark/CMakeFiles/zl_snark.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zl_ec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
