file(REMOVE_RECURSE
  "libzl_chain.a"
)
