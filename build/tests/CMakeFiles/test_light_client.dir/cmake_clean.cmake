file(REMOVE_RECURSE
  "CMakeFiles/test_light_client.dir/test_light_client.cpp.o"
  "CMakeFiles/test_light_client.dir/test_light_client.cpp.o.d"
  "test_light_client"
  "test_light_client.pdb"
  "test_light_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_light_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
