# Empty dependencies file for test_light_client.
# This may be replaced when dependencies are built.
