file(REMOVE_RECURSE
  "CMakeFiles/test_zebralancer.dir/test_zebralancer.cpp.o"
  "CMakeFiles/test_zebralancer.dir/test_zebralancer.cpp.o.d"
  "test_zebralancer"
  "test_zebralancer.pdb"
  "test_zebralancer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zebralancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
