# Empty compiler generated dependencies file for test_zebralancer.
# This may be replaced when dependencies are built.
