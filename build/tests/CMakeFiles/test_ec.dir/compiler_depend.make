# Empty compiler generated dependencies file for test_ec.
# This may be replaced when dependencies are built.
