file(REMOVE_RECURSE
  "CMakeFiles/test_snark.dir/test_snark.cpp.o"
  "CMakeFiles/test_snark.dir/test_snark.cpp.o.d"
  "test_snark"
  "test_snark.pdb"
  "test_snark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
