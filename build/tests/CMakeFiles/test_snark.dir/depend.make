# Empty dependencies file for test_snark.
# This may be replaced when dependencies are built.
