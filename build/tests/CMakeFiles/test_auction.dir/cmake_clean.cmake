file(REMOVE_RECURSE
  "CMakeFiles/test_auction.dir/test_auction.cpp.o"
  "CMakeFiles/test_auction.dir/test_auction.cpp.o.d"
  "test_auction"
  "test_auction.pdb"
  "test_auction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
