# Empty compiler generated dependencies file for test_auction.
# This may be replaced when dependencies are built.
