file(REMOVE_RECURSE
  "CMakeFiles/test_sha256_gadget.dir/test_sha256_gadget.cpp.o"
  "CMakeFiles/test_sha256_gadget.dir/test_sha256_gadget.cpp.o.d"
  "test_sha256_gadget"
  "test_sha256_gadget.pdb"
  "test_sha256_gadget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha256_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
