# Empty dependencies file for test_sha256_gadget.
# This may be replaced when dependencies are built.
