file(REMOVE_RECURSE
  "CMakeFiles/test_gadgets.dir/test_gadgets.cpp.o"
  "CMakeFiles/test_gadgets.dir/test_gadgets.cpp.o.d"
  "test_gadgets"
  "test_gadgets.pdb"
  "test_gadgets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
