# Empty dependencies file for test_pkc.
# This may be replaced when dependencies are built.
