file(REMOVE_RECURSE
  "CMakeFiles/test_pkc.dir/test_pkc.cpp.o"
  "CMakeFiles/test_pkc.dir/test_pkc.cpp.o.d"
  "test_pkc"
  "test_pkc.pdb"
  "test_pkc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pkc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
