# Empty dependencies file for test_auth.
# This may be replaced when dependencies are built.
