file(REMOVE_RECURSE
  "CMakeFiles/test_auth.dir/test_auth.cpp.o"
  "CMakeFiles/test_auth.dir/test_auth.cpp.o.d"
  "test_auth"
  "test_auth.pdb"
  "test_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
