# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_snark[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_gadgets[1]_include.cmake")
include("/root/repo/build/tests/test_pkc[1]_include.cmake")
include("/root/repo/build/tests/test_auth[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_zebralancer[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_classic[1]_include.cmake")
include("/root/repo/build/tests/test_sha256_gadget[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_auction[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_network_edge[1]_include.cmake")
include("/root/repo/build/tests/test_light_client[1]_include.cmake")
